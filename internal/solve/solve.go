// Package solve is the shared, method-agnostic optimizer runtime behind
// internal/core (level-set ψ) and internal/pixelilt (pixel θ): one
// Driver owns the iteration budget, the adaptive step scale, keep-best
// and history/snapshot bookkeeping, the numerical-health watchdog and
// typed trace emission, while each method plugs in a Stepper that knows
// how to evaluate its gradient and advance its state. RunLevels layers
// the coarse-to-fine schedule (exact coarse-bank hand-offs, globally
// contiguous iteration numbering, level_switch events) on top of the
// same Driver.
//
// The Driver is also the cancellation and checkpoint boundary: Run
// yields between iterations, so a context cancellation surfaces
// promptly as a Cancelled error carrying a resumable Checkpoint, and a
// restored run replays bit-identically to an uninterrupted one — the
// primitive a preemptible job queue schedules on.
package solve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// IterStats records one driver iteration — the superset of the
// method-specific history schemas (core keeps the nominal/PV-band cost
// split, pixelilt the per-iteration corner-simulation count).
type IterStats struct {
	Iter        int
	Cost        float64
	CostNominal float64
	CostPVB     float64
	MaxVelocity float64
	TimeStep    float64
	LambdaPRP   float64
	Evals       int
}

// Snapshot is a mask state captured mid-run.
type Snapshot struct {
	Iter int
	Mask *grid.Field
}

// Stats is what Stepper.Eval reports for one iteration.
type Stats struct {
	// Cost is the iteration's total cost: it drives the adaptive step
	// scale, keep-best selection, watchdog verdicts and trace events.
	Cost        float64
	CostNominal float64
	CostPVB     float64
	LambdaPRP   float64
	// Evals counts the forward+gradient corner evaluations performed
	// this iteration (0 when the method does not track them).
	Evals int
	// Name tags the iteration trace event ("" omits the field).
	Name string
	// Detailed selects the level-set event schema: the iteration event
	// carries the cost split, gradient norm, velocity and step size.
	// Off, the event carries only Name/N/Cost — the pixel baseline
	// schema.
	Detailed bool
}

// Stepper is the per-method slice of one optimizer iteration. The
// Driver calls, in order: Eval (simulate + search direction), SaveBest
// (keep-best bookkeeping), StepSize (move magnitude under the current
// step scale), GradNorm (tracing/health only), and Advance (apply the
// move). All methods run on the Driver's goroutine.
type Stepper interface {
	// Eval simulates local iteration i and computes the search
	// direction, leaving it in the stepper's scratch.
	Eval(i int) Stats
	// SaveBest copies the current iterate into the best-iterate store.
	// Called only when Config.KeepBest is set.
	SaveBest()
	// StepSize returns the move magnitude for the current direction
	// under the driver's step scale, plus the direction's max abs entry
	// (the convergence statistic).
	StepSize(scale float64) (dt, maxV float64)
	// GradNorm returns the search-direction norm for tracing and health
	// verdicts. Called only when a sink or watchdog is attached.
	GradNorm() float64
	// Advance moves the state by dt and returns the step actually taken
	// (a line search may adjust it).
	Advance(i int, dt float64) float64
	// Snapshot clones the current mask for the snapshot series. Called
	// only when Config.SnapshotEvery > 0.
	Snapshot() *grid.Field
	// State clones the evolving state (ψ or θ) — the multi-resolution
	// hand-off and the final Outcome.State.
	State() *grid.Field
	// SaveState clones every field a bit-exact resume needs, keyed by
	// the method's own names (e.g. "psi", "gprev", "velocity").
	SaveState() map[string]*grid.Field
	// RestoreState loads a SaveState map back into the stepper.
	RestoreState(map[string]*grid.Field) error
}

// Config parameterises a Driver.
type Config struct {
	// Method tags checkpoints and cancellation events ("level-set", a
	// pixelilt variant name, …) and guards resume against mismatches.
	Method string
	// MaxIter is the iteration budget of this run (or level).
	MaxIter int
	// Offset shifts the globally reported iteration numbers (history,
	// events, watchdog verdicts) — the multi-resolution schedule keeps
	// one contiguous axis across levels with it.
	Offset int
	// Tolerance stops the run when the direction's max abs entry falls
	// to or below it.
	Tolerance float64
	// AdaptiveStep halves the step scale after a cost increase and lets
	// it recover slowly (×1.1, capped at BaseScale) on success, with a
	// floor of BaseScale/16. Off, the scale stays at BaseScale.
	AdaptiveStep bool
	// BaseScale is the initial (and maximum) step scale — λ_t for the
	// level-set CFL step, the fixed step size for the pixel baselines.
	BaseScale float64
	// KeepBest tracks the lowest-cost iterate via Stepper.SaveBest.
	KeepBest bool
	// SnapshotEvery records a snapshot every that many iterations
	// (0 disables).
	SnapshotEvery int
	// Sink receives one typed iteration event per step plus the
	// cancellation/checkpoint events; nil disables tracing and the
	// disabled path performs no allocations.
	Sink obs.Sink
	// Trace tags this run's events in a shared sink.
	Trace string
	// Engine names the execution engine in emitted events.
	Engine string
	// Health enables the numerical-health watchdog; the driver owns the
	// watchdog and stops the run on an abort verdict.
	Health *obs.HealthPolicy
	// Observe, when non-nil, receives each step's wall time at the same
	// measurement point the per-method iteration metrics used — before
	// trace emission, so instrumentation cost stays out of the
	// histogram.
	Observe func(time.Duration)
}

// Outcome is what a Driver run produced. History and Snapshots are
// owned by the outcome; State is a clone of the final evolving state.
type Outcome struct {
	Iterations  int
	Converged   bool
	Aborted     bool
	AbortReason string
	// BestCost is the lowest cost seen (KeepBest bookkeeping); +Inf
	// when no iteration ran or KeepBest was off.
	BestCost  float64
	Evals     int
	History   []IterStats
	Snapshots []Snapshot
	State     *grid.Field
	// AbortCheckpoint is captured at the iteration boundary a watchdog
	// abort stopped the run on, so a poisoned run can be resumed (e.g.
	// under a different policy) or bisected postmortem. nil unless
	// Aborted.
	AbortCheckpoint *Checkpoint
}

// Driver executes the shared iteration loop over a Stepper. One Driver
// runs one (level of one) optimization; it is not safe for concurrent
// use.
type Driver struct {
	s   Stepper
	cfg Config
	wd  *obs.Watchdog

	i        int // next local iteration
	scale    float64
	prevCost float64
	hasPrev  bool
	bestCost float64
	out      *Outcome
}

// NewDriver builds a driver over the stepper. The history is allocated
// to the full budget up front so the steady-state step stays
// allocation-free.
func NewDriver(s Stepper, cfg Config) *Driver {
	d := &Driver{
		s:        s,
		cfg:      cfg,
		scale:    cfg.BaseScale,
		bestCost: math.Inf(1),
		out: &Outcome{
			BestCost: math.Inf(1),
			History:  make([]IterStats, 0, cfg.MaxIter),
		},
	}
	if cfg.Health != nil {
		d.wd = obs.NewWatchdog(*cfg.Health, cfg.Sink, cfg.Trace)
	}
	return d
}

// Step executes one iteration and reports whether the run should stop
// (budget exhaustion is the caller's check). The steady-state path
// performs no allocations: scratch lives on the stepper, the history
// is pre-sized, and the disabled-sink path is a nil check.
func (d *Driver) Step() (stop bool) {
	stepStart := time.Now()
	i := d.i
	gi := i + d.cfg.Offset // globally reported iteration number

	st := d.s.Eval(i)

	// Feedback step-scale control: shrink after an overshoot, recover
	// slowly.
	if d.cfg.AdaptiveStep && i > 0 {
		if st.Cost > d.prevCost {
			d.scale = math.Max(d.scale*0.5, d.cfg.BaseScale/16)
		} else {
			d.scale = math.Min(d.scale*1.1, d.cfg.BaseScale)
		}
	}
	d.prevCost, d.hasPrev = st.Cost, true
	if d.cfg.KeepBest && st.Cost < d.bestCost {
		d.bestCost = st.Cost
		d.s.SaveBest()
	}

	// Record stats before the update so the trace reflects the state
	// the direction was computed from.
	dt, maxV := d.s.StepSize(d.scale)
	d.out.History = append(d.out.History, IterStats{
		Iter:        gi,
		Cost:        st.Cost,
		CostNominal: st.CostNominal,
		CostPVB:     st.CostPVB,
		MaxVelocity: maxV,
		TimeStep:    dt,
		LambdaPRP:   st.LambdaPRP,
		Evals:       st.Evals,
	})
	d.out.Evals += st.Evals
	if d.cfg.Observe != nil {
		d.cfg.Observe(time.Since(stepStart))
	}
	gradNorm := 0.0
	if d.cfg.Sink != nil || d.wd != nil {
		gradNorm = d.s.GradNorm()
	}
	if d.cfg.Sink != nil {
		e := obs.Event{
			Type:   obs.EventIteration,
			Trace:  d.cfg.Trace,
			Name:   st.Name,
			Engine: d.cfg.Engine,
			Iter:   gi,
			N:      st.Evals,
			Cost:   st.Cost,
			DurNS:  time.Since(stepStart).Nanoseconds(),
		}
		if st.Detailed {
			e.CostNominal = st.CostNominal
			e.CostPVB = st.CostPVB
			e.GradNorm = gradNorm
			e.MaxVelocity = maxV
			e.TimeStep = dt
			e.LambdaPRP = st.LambdaPRP
		}
		d.cfg.Sink.Emit(e)
	}
	if d.cfg.SnapshotEvery > 0 && i%d.cfg.SnapshotEvery == 0 {
		d.out.Snapshots = append(d.out.Snapshots, Snapshot{Iter: gi, Mask: d.s.Snapshot()})
	}

	d.out.Iterations = i + 1
	d.i = i + 1
	// Health watchdog: judge this iteration's statistics and stop the
	// run in the same iteration when the policy demands an abort, so a
	// NaN-poisoned or diverging run cannot burn its remaining budget.
	if d.wd != nil {
		if v := d.wd.Observe(gi, st.Cost, gradNorm, dt); v.Abort {
			d.out.Aborted = true
			d.out.AbortReason = v.Reason
			// Capture the poisoned state at this exact boundary: the
			// postmortem path (flight recorder bundles) persists it so the
			// aborted run stays resumable for bisection.
			d.out.AbortCheckpoint = d.Checkpoint()
			return true
		}
	}
	// Stop when the front has stalled.
	if maxV <= d.cfg.Tolerance {
		d.out.Converged = true
		return true
	}

	if adt := d.s.Advance(i, dt); adt != dt {
		d.out.History[len(d.out.History)-1].TimeStep = adt
	}
	return false
}

// Run drives Step to the budget, a stop verdict, or a cancellation.
// Cancellation is checked at each iteration boundary; when it fires,
// Run captures a Checkpoint at that exact boundary and returns a
// *Cancelled error that unwraps to the context's error.
//
// The loop runs under pprof labels (run_id = Config.Trace, phase =
// Config.Method) so CPU profiles — live /debug/pprof pulls and the
// flight recorder's captured slices — attribute samples to the job.
// Goroutine labels inherit into goroutines spawned inside the region,
// which covers the engine's per-call corner/chunk workers. The labels
// are applied once per Run, not per Step, keeping the steady-state
// iteration allocation-free.
func (d *Driver) Run(ctx context.Context) (out *Outcome, err error) {
	labels := pprof.Labels("run_id", d.cfg.Trace, "phase", d.cfg.Method)
	pprof.Do(ctx, labels, func(ctx context.Context) {
		for d.i < d.cfg.MaxIter {
			if cerr := ctx.Err(); cerr != nil {
				err = d.cancelled(cerr)
				return
			}
			if d.Step() {
				break
			}
		}
		out = d.finish()
	})
	return out, err
}

// finish seals the outcome with the final state clone.
func (d *Driver) finish() *Outcome {
	d.out.BestCost = d.bestCost
	d.out.State = d.s.State()
	return d.out
}

// cancelled captures the checkpoint, emits the cancellation events and
// wraps the cause.
func (d *Driver) cancelled(cause error) error {
	cp := d.Checkpoint()
	if d.cfg.Sink != nil {
		gi := d.i + d.cfg.Offset
		d.cfg.Sink.Emit(obs.Event{
			Type:   obs.EventCancelled,
			Trace:  d.cfg.Trace,
			Name:   d.cfg.Method,
			Engine: d.cfg.Engine,
			Iter:   gi,
			Msg:    cause.Error(),
		})
		d.cfg.Sink.Emit(obs.Event{
			Type:   obs.EventCheckpoint,
			Trace:  d.cfg.Trace,
			Name:   d.cfg.Method,
			Engine: d.cfg.Engine,
			Iter:   gi,
			N:      len(cp.State),
			Msg:    "resumable state captured",
		})
	}
	return &Cancelled{Checkpoint: cp, cause: cause}
}

// Checkpoint captures the run at the current iteration boundary. The
// returned checkpoint owns clones of every field; the driver can keep
// running afterwards.
func (d *Driver) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Method:   d.cfg.Method,
		Factor:   1,
		Iter:     d.i,
		Offset:   d.cfg.Offset,
		Scale:    d.scale,
		PrevCost: d.prevCost,
		HasPrev:  d.hasPrev,
		BestCost: d.bestCost,
		Evals:    d.out.Evals,
		History:  append([]IterStats(nil), d.out.History...),
		State:    d.s.SaveState(),
	}
	if d.wd != nil {
		st := d.wd.State()
		cp.Watchdog = &st
	}
	return cp
}

// Restore loads a checkpoint into a freshly built driver (no steps
// taken yet) so Run continues bit-identically from the captured
// boundary. The driver must be configured exactly as the checkpointed
// run was — same method, budget and iteration offset.
func (d *Driver) Restore(cp *Checkpoint) error {
	switch {
	case cp == nil:
		return errors.New("solve: nil checkpoint")
	case cp.Method != d.cfg.Method:
		return fmt.Errorf("solve: checkpoint method %q does not match run method %q", cp.Method, d.cfg.Method)
	case cp.Offset != d.cfg.Offset:
		return fmt.Errorf("solve: checkpoint iteration offset %d does not match the run's %d", cp.Offset, d.cfg.Offset)
	case cp.Iter > d.cfg.MaxIter || len(cp.History) > d.cfg.MaxIter:
		return fmt.Errorf("solve: checkpoint at iteration %d exceeds the %d-iteration budget", cp.Iter, d.cfg.MaxIter)
	}
	d.i = cp.Iter
	d.scale = cp.Scale
	d.prevCost, d.hasPrev = cp.PrevCost, cp.HasPrev
	d.bestCost = cp.BestCost
	d.out.Evals = cp.Evals
	d.out.History = append(d.out.History[:0], cp.History...)
	d.out.Iterations = cp.Iter
	if cp.Watchdog != nil && d.wd != nil {
		d.wd.Restore(*cp.Watchdog)
	}
	return d.s.RestoreState(cp.State)
}
