package solve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"lsopc/internal/grid"
	"lsopc/internal/obs"
)

// quadStepper is a deterministic scalar Stepper: the state x minimizes
// cost(x) = x² by gradient descent, x ← x − dt·2x with dt = 0.1·scale.
// It records every driver callback so tests can pin the exact call
// sequence and step-scale trajectory, and it can cancel its own context
// at a chosen iteration to exercise the boundary logic.
type quadStepper struct {
	x     *grid.Field // Data[0] is the scalar state
	best  *grid.Field
	grad  float64
	cost  float64 // overridden by script when set
	calls []string

	script   []float64 // optional per-iteration cost override
	scales   []float64 // scale passed to each StepSize call
	cancelAt int       // local iteration whose Eval cancels…
	cancel   context.CancelFunc
}

func newQuadStepper(x0 float64) *quadStepper {
	f := grid.NewField(2, 2)
	f.Data[0] = x0
	return &quadStepper{x: f, cancelAt: -1}
}

func (s *quadStepper) Eval(i int) Stats {
	s.calls = append(s.calls, fmt.Sprintf("eval:%d", i))
	if s.cancel != nil && i == s.cancelAt {
		s.cancel()
	}
	x := s.x.Data[0]
	s.grad = 2 * x
	s.cost = x * x
	if i < len(s.script) {
		s.cost = s.script[i]
	}
	return Stats{Cost: s.cost, CostNominal: s.cost, Name: "quad", Detailed: true}
}

func (s *quadStepper) SaveBest() {
	s.calls = append(s.calls, "savebest")
	s.best = s.x.Clone()
}

func (s *quadStepper) StepSize(scale float64) (dt, maxV float64) {
	s.scales = append(s.scales, scale)
	return 0.1 * scale, math.Abs(s.grad)
}

func (s *quadStepper) GradNorm() float64 { return math.Abs(s.grad) }

func (s *quadStepper) Advance(i int, dt float64) float64 {
	s.x.Data[0] -= dt * s.grad
	return dt
}

func (s *quadStepper) Snapshot() *grid.Field { return s.x.Clone() }
func (s *quadStepper) State() *grid.Field    { return s.x.Clone() }

func (s *quadStepper) SaveState() map[string]*grid.Field {
	return map[string]*grid.Field{"x": s.x.Clone()}
}

func (s *quadStepper) RestoreState(st map[string]*grid.Field) error {
	f, ok := st["x"]
	if !ok {
		return errors.New("quad: checkpoint missing field x")
	}
	s.x.CopyFrom(f)
	return nil
}

func quadConfig(maxIter int) Config {
	return Config{Method: "quad", MaxIter: maxIter, BaseScale: 1}
}

func TestDriverConvergesOnTolerance(t *testing.T) {
	s := newQuadStepper(1)
	cfg := quadConfig(500)
	cfg.Tolerance = 1e-6
	out, err := NewDriver(s, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("run did not converge in %d iterations (final x=%g)", out.Iterations, s.x.Data[0])
	}
	if out.Iterations >= 500 || out.Iterations != len(out.History) {
		t.Fatalf("iterations %d, history %d", out.Iterations, len(out.History))
	}
	if got := out.State.Data[0]; math.Abs(got) > 1e-6 {
		t.Fatalf("final state %g, want ~0", got)
	}
}

func TestDriverAdaptiveScaleTrajectory(t *testing.T) {
	s := newQuadStepper(1)
	// Scripted costs force the exact shrink/recover pattern: i0 never
	// adapts, a rise halves, a fall recovers ×1.1 capped at BaseScale.
	s.script = []float64{10, 5, 7, 6, 100, 1}
	cfg := quadConfig(6)
	cfg.AdaptiveStep = true
	if _, err := NewDriver(s, cfg).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0.5, 0.55, 0.275, 0.275 * 1.1}
	if len(s.scales) != len(want) {
		t.Fatalf("StepSize called %d times, want %d", len(s.scales), len(want))
	}
	for i, w := range want {
		if math.Abs(s.scales[i]-w) > 1e-12 {
			t.Fatalf("iteration %d ran at scale %g, want %g (full trajectory %v)", i, s.scales[i], w, s.scales)
		}
	}
}

func TestDriverAdaptiveScaleFloor(t *testing.T) {
	s := newQuadStepper(1)
	s.script = make([]float64, 12)
	for i := range s.script {
		s.script[i] = float64(i) // monotone rise: halve every iteration
	}
	cfg := quadConfig(12)
	cfg.AdaptiveStep = true
	if _, err := NewDriver(s, cfg).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	floor := cfg.BaseScale / 16
	if got := s.scales[len(s.scales)-1]; got != floor {
		t.Fatalf("scale bottomed at %g, want floor %g", got, floor)
	}
}

func TestDriverKeepBest(t *testing.T) {
	s := newQuadStepper(1)
	s.script = []float64{5, 3, 4, 2, 6}
	cfg := quadConfig(5)
	cfg.KeepBest = true
	out, err := NewDriver(s, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	saves := 0
	for _, c := range s.calls {
		if c == "savebest" {
			saves++
		}
	}
	if saves != 3 { // costs 5, 3, 2 are successive minima
		t.Fatalf("SaveBest called %d times, want 3 (calls %v)", saves, s.calls)
	}
	if out.BestCost != 2 {
		t.Fatalf("BestCost = %g, want 2", out.BestCost)
	}
}

func TestDriverHistoryOffsets(t *testing.T) {
	s := newQuadStepper(1)
	cfg := quadConfig(3)
	cfg.Offset = 40
	out, err := NewDriver(s, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range out.History {
		if h.Iter != 40+i {
			t.Fatalf("history[%d].Iter = %d, want %d", i, h.Iter, 40+i)
		}
	}
}

func TestDriverCancelledBeforeFirstStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := newQuadStepper(1)
	_, err := NewDriver(s, quadConfig(10)).Run(ctx)
	var cerr *Cancelled
	if !errors.As(err, &cerr) {
		t.Fatalf("Run returned %v, want *Cancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled error %v does not unwrap to context.Canceled", err)
	}
	if cerr.Checkpoint.Iter != 0 || len(cerr.Checkpoint.History) != 0 {
		t.Fatalf("pre-run checkpoint at iter %d with %d history rows, want 0/0",
			cerr.Checkpoint.Iter, len(cerr.Checkpoint.History))
	}
	if len(s.calls) != 0 {
		t.Fatalf("stepper was called despite pre-cancelled context: %v", s.calls)
	}
}

func TestDriverCancelMidRunEmitsEvents(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := newQuadStepper(1)
	s.cancelAt, s.cancel = 3, cancel
	sink := &obs.CollectorSink{}
	cfg := quadConfig(10)
	cfg.Sink = sink
	cfg.Trace = "t1"
	_, err := NewDriver(s, cfg).Run(ctx)
	var cerr *Cancelled
	if !errors.As(err, &cerr) {
		t.Fatalf("Run returned %v, want *Cancelled", err)
	}
	// Eval at i=3 cancels; that step still completes, so the boundary
	// checkpoint is at local iteration 4.
	if cerr.Checkpoint.Iter != 4 || len(cerr.Checkpoint.History) != 4 {
		t.Fatalf("checkpoint iter %d / history %d, want 4/4", cerr.Checkpoint.Iter, len(cerr.Checkpoint.History))
	}
	var sawCancel, sawCkpt bool
	for _, e := range sink.Events() {
		switch e.Type {
		case obs.EventCancelled:
			sawCancel = true
			if e.Msg == "" || e.Iter != 4 || e.Trace != "t1" {
				t.Fatalf("cancelled event %+v lacks cause/iter/trace", e)
			}
		case obs.EventCheckpoint:
			sawCkpt = true
			if e.N != 1 {
				t.Fatalf("checkpoint event N = %d, want 1 state field", e.N)
			}
		}
	}
	if !sawCancel || !sawCkpt {
		t.Fatalf("cancel=%v checkpoint=%v events missing from trace", sawCancel, sawCkpt)
	}
}

// TestDriverResumeBitIdentical is the runtime's core guarantee: cancel,
// checkpoint through a gob round trip, restore into a fresh driver, and
// the merged run must equal an uninterrupted one bit for bit.
func TestDriverResumeBitIdentical(t *testing.T) {
	run := func(cancelAt int) (*Outcome, []float64, error) {
		cfg := quadConfig(40)
		cfg.AdaptiveStep = true
		cfg.KeepBest = true
		cfg.Tolerance = 1e-9
		s := newQuadStepper(1.7)
		ctx := context.Background()
		if cancelAt >= 0 {
			cctx, cancel := context.WithCancel(ctx)
			ctx = cctx
			s.cancelAt, s.cancel = cancelAt, cancel
		}
		out, err := NewDriver(s, cfg).Run(ctx)
		return out, s.scales, err
	}

	ref, refScales, err := run(-1)
	if err != nil {
		t.Fatal(err)
	}

	_, _, err = run(13)
	var cerr *Cancelled
	if !errors.As(err, &cerr) {
		t.Fatalf("cancelled run returned %v", err)
	}

	// Round-trip the checkpoint through the gob file format.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, cerr.Checkpoint); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := quadConfig(40)
	cfg.AdaptiveStep = true
	cfg.KeepBest = true
	cfg.Tolerance = 1e-9
	s2 := newQuadStepper(0) // wrong start: Restore must overwrite it
	d2 := NewDriver(s2, cfg)
	if err := d2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	res, err := d2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if res.Iterations != ref.Iterations || res.Converged != ref.Converged {
		t.Fatalf("resumed run: %d iters converged=%v, reference %d/%v",
			res.Iterations, res.Converged, ref.Iterations, ref.Converged)
	}
	if len(res.History) != len(ref.History) {
		t.Fatalf("resumed history %d rows, reference %d", len(res.History), len(ref.History))
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Fatalf("history[%d] diverged after resume:\n  resumed   %+v\n  reference %+v",
				i, res.History[i], ref.History[i])
		}
	}
	if res.State.Data[0] != ref.State.Data[0] {
		t.Fatalf("final state %g != reference %g", res.State.Data[0], ref.State.Data[0])
	}
	if res.BestCost != ref.BestCost {
		t.Fatalf("best cost %g != reference %g", res.BestCost, ref.BestCost)
	}
	// The post-resume step scales must continue the reference trajectory.
	for i, sc := range s2.scales {
		if want := refScales[cp.Iter+i]; sc != want {
			t.Fatalf("resumed iteration %d ran at scale %g, reference %g", cp.Iter+i, sc, want)
		}
	}
}

func TestDriverRestoreValidation(t *testing.T) {
	mk := func() *Driver { return NewDriver(newQuadStepper(1), quadConfig(10)) }
	good := mk().Checkpoint()

	if err := mk().Restore(nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	bad := *good
	bad.Method = "other"
	if err := mk().Restore(&bad); err == nil {
		t.Fatal("method mismatch accepted")
	}
	bad = *good
	bad.Offset = 99
	if err := mk().Restore(&bad); err == nil {
		t.Fatal("offset mismatch accepted")
	}
	bad = *good
	bad.Iter = 11
	if err := mk().Restore(&bad); err == nil {
		t.Fatal("over-budget checkpoint accepted")
	}
	bad = *good
	bad.State = map[string]*grid.Field{}
	if err := mk().Restore(&bad); err == nil {
		t.Fatal("checkpoint without the state field accepted")
	}
	if err := mk().Restore(good); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}

func TestCheckpointGobRoundTripNaN(t *testing.T) {
	cp := NewDriver(newQuadStepper(1), quadConfig(10)).Checkpoint()
	cp.PrevCost = math.NaN()
	cp.History = []IterStats{{Iter: 0, Cost: math.Inf(1)}}
	path := filepath.Join(t.TempDir(), "nan.ckpt")
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.PrevCost) || !math.IsInf(got.History[0].Cost, 1) {
		t.Fatalf("non-finite values did not survive the round trip: %+v", got)
	}
}

func TestDriverSnapshotCadence(t *testing.T) {
	s := newQuadStepper(1)
	cfg := quadConfig(7)
	cfg.SnapshotEvery = 3
	out, err := NewDriver(s, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Snapshots) != 3 { // local iterations 0, 3, 6
		t.Fatalf("%d snapshots, want 3", len(out.Snapshots))
	}
	for i, want := range []int{0, 3, 6} {
		if out.Snapshots[i].Iter != want {
			t.Fatalf("snapshot %d at iteration %d, want %d", i, out.Snapshots[i].Iter, want)
		}
	}
}
