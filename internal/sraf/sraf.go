// Package sraf generates sub-resolution assist features (SRAFs, also
// called scattering bars): narrow mask shapes placed at a fixed distance
// from the design's edges that are too small to print themselves but
// steer diffraction energy so the main features hold their shape through
// defocus. SRAFs are the classic companion RET to OPC in the paper's
// problem domain.
//
// Placement uses the exact Euclidean distance field of the target: an
// SRAF ring occupies the band DistancePx ≤ d(x) < DistancePx+WidthPx,
// which automatically respects the keep-away distance from every
// feature and merges gracefully in dense regions.
package sraf

import (
	"fmt"

	"lsopc/internal/grid"
	"lsopc/internal/levelset"
)

// Options parameterises SRAF placement in pixels of the target raster.
type Options struct {
	// DistancePx is the gap between a feature edge and its assist bar.
	DistancePx float64
	// WidthPx is the assist bar width; keep it sub-resolution
	// (≲ 0.3·λ/NA) so the bar itself never prints.
	WidthPx float64
	// MinRunPx prunes SRAF fragments shorter than this many pixels
	// (0 keeps everything). Tiny fragments are MRC liabilities.
	MinRunPx int
}

// DefaultOptions returns a 193 nm-era recipe at the given pixel pitch:
// 60 nm gap, 32 nm bars, 48 nm minimum fragment.
func DefaultOptions(pixelNM float64) Options {
	return Options{
		DistancePx: 60 / pixelNM,
		WidthPx:    32 / pixelNM,
		MinRunPx:   int(48/pixelNM + 0.5),
	}
}

// Validate checks the recipe.
func (o Options) Validate() error {
	switch {
	case o.DistancePx <= 0:
		return fmt.Errorf("sraf: distance must be positive, got %g", o.DistancePx)
	case o.WidthPx <= 0:
		return fmt.Errorf("sraf: width must be positive, got %g", o.WidthPx)
	case o.MinRunPx < 0:
		return fmt.Errorf("sraf: min run must be ≥ 0, got %d", o.MinRunPx)
	}
	return nil
}

// Generate returns the SRAF-only mask for the target.
func Generate(target *grid.Field, opts Options) (*grid.Field, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	psi := levelset.SignedDistance(target)
	out := grid.NewFieldLike(target)
	lo, hi := opts.DistancePx, opts.DistancePx+opts.WidthPx
	for i, d := range psi.Data {
		if d >= lo && d < hi {
			out.Data[i] = 1
		}
	}
	if opts.MinRunPx > 0 {
		pruneFragments(out, opts.MinRunPx)
	}
	return out, nil
}

// Add returns target ∪ SRAF — the assisted mask (e.g. as an ILT warm
// start).
func Add(target *grid.Field, opts Options) (*grid.Field, error) {
	bars, err := Generate(target, opts)
	if err != nil {
		return nil, err
	}
	for i, v := range target.Data {
		if v > 0.5 {
			bars.Data[i] = 1
		}
	}
	return bars, nil
}

// pruneFragments removes connected SRAF components whose bounding-box
// long side is below minRun pixels.
func pruneFragments(mask *grid.Field, minRun int) {
	w, h := mask.W, mask.H
	labels := make([]int32, w*h)
	next := int32(0)
	var stack []int32
	type box struct{ x0, y0, x1, y1 int }
	var boxes []box
	for start := range mask.Data {
		if mask.Data[start] <= 0.5 || labels[start] != 0 {
			continue
		}
		next++
		b := box{start % w, start / w, start % w, start / w}
		stack = append(stack[:0], int32(start))
		labels[start] = next
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			if x < b.x0 {
				b.x0 = x
			}
			if x > b.x1 {
				b.x1 = x
			}
			if y < b.y0 {
				b.y0 = y
			}
			if y > b.y1 {
				b.y1 = y
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if mask.Data[j] > 0.5 && labels[j] == 0 {
					labels[j] = next
					stack = append(stack, int32(j))
				}
			}
		}
		boxes = append(boxes, b)
	}
	for i, l := range labels {
		if l == 0 {
			continue
		}
		b := boxes[l-1]
		long := b.x1 - b.x0 + 1
		if dy := b.y1 - b.y0 + 1; dy > long {
			long = dy
		}
		if long < minRun {
			mask.Data[i] = 0
		}
	}
}
