package sraf

import (
	"math"
	"testing"

	"lsopc/internal/engine"
	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
)

func rectMask(n, x0, y0, x1, y1 int) *grid.Field {
	f := grid.NewField(n, n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

func TestValidate(t *testing.T) {
	if err := DefaultOptions(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{DistancePx: 0, WidthPx: 2},
		{DistancePx: 3, WidthPx: 0},
		{DistancePx: 3, WidthPx: 2, MinRunPx: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
	if _, err := Generate(grid.NewField(8, 8), Options{}); err == nil {
		t.Fatal("Generate accepted invalid options")
	}
}

func TestRingGeometry(t *testing.T) {
	m := rectMask(96, 40, 40, 56, 56)
	bars, err := Generate(m, Options{DistancePx: 4, WidthPx: 3})
	if err != nil {
		t.Fatal(err)
	}
	if bars.Sum() == 0 {
		t.Fatal("no SRAF generated")
	}
	// SRAF must not touch the target and must respect the distance band.
	psi := levelset.SignedDistance(m)
	for i, v := range bars.Data {
		if v <= 0.5 {
			continue
		}
		if m.Data[i] > 0.5 {
			t.Fatal("SRAF overlaps the target")
		}
		if psi.Data[i] < 4-1e-9 || psi.Data[i] >= 7 {
			t.Fatalf("SRAF pixel at distance %g outside [4,7)", psi.Data[i])
		}
	}
	// Directly left of the feature at the band distance: bar present.
	if bars.At(40-5, 48) != 1 {
		t.Fatal("left assist bar missing")
	}
}

func TestAddUnionsTargetAndBars(t *testing.T) {
	m := rectMask(96, 40, 40, 56, 56)
	assisted, err := Add(m, Options{DistancePx: 4, WidthPx: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if m.Data[i] > 0.5 && assisted.Data[i] != 1 {
			t.Fatal("Add lost target pixels")
		}
	}
	if assisted.Sum() <= m.Sum() {
		t.Fatal("Add produced no bars")
	}
}

func TestPruneFragments(t *testing.T) {
	m := grid.NewField(64, 64)
	// One long bar and one tiny fragment.
	for x := 10; x < 40; x++ {
		m.Set(x, 20, 1)
	}
	m.Set(50, 50, 1)
	m.Set(51, 50, 1)
	pruneFragments(m, 8)
	if m.At(20, 20) != 1 {
		t.Fatal("long bar pruned")
	}
	if m.At(50, 50) != 0 || m.At(51, 50) != 0 {
		t.Fatal("tiny fragment survived")
	}
}

// TestSRAFsDoNotPrint is the physical requirement: with the default
// sub-resolution recipe, the assist bars alone must print nothing at any
// process corner.
func TestSRAFsDoNotPrint(t *testing.T) {
	cfg := litho.DefaultConfig(128, 16)
	cfg.Optics.Kernels = 4
	sim, err := litho.NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	// A realistic isolated feature (512 nm square) with default SRAFs.
	m := rectMask(128, 48, 48, 80, 80)
	bars, err := Generate(m, DefaultOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	if bars.Sum() == 0 {
		t.Skip("recipe produced no bars at this pitch")
	}
	spec := sim.MaskSpectrum(bars)
	printed := grid.NewField(128, 128)
	for _, cond := range litho.AllConditions {
		sim.PrintedBinary(printed, spec, cond)
		if printed.Sum() != 0 {
			t.Fatalf("%v: SRAF-only mask printed %g pixels", cond, printed.Sum())
		}
	}
}

// TestSRAFImproveDefocusStability measures the intended optical effect:
// the assisted mask's printed feature should lose no more area under
// defocus than the bare mask's.
func TestSRAFImproveDefocusStability(t *testing.T) {
	cfg := litho.DefaultConfig(128, 16)
	cfg.Optics.Kernels = 6
	sim, err := litho.NewSimulator(cfg, engine.CPU())
	if err != nil {
		t.Fatal(err)
	}
	m := rectMask(128, 56, 40, 64, 88) // isolated 128 nm-wide line
	assisted, err := Add(m, DefaultOptions(16))
	if err != nil {
		t.Fatal(err)
	}

	loss := func(mask *grid.Field) float64 {
		spec := sim.MaskSpectrum(mask)
		nom := grid.NewField(128, 128)
		def := grid.NewField(128, 128)
		sim.PrintedBinary(nom, spec, litho.Nominal)
		sim.PrintedBinary(def, spec, litho.Inner)
		if nom.Sum() == 0 {
			return math.Inf(1)
		}
		return (nom.Sum() - def.Sum()) / nom.Sum()
	}
	bare := loss(m)
	helped := loss(assisted)
	if helped > bare+0.10 {
		t.Fatalf("SRAFs worsened defocus loss: bare %.3f vs assisted %.3f", bare, helped)
	}
}
