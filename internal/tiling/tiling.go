// Package tiling scales mask optimization beyond a single simulation
// window: a full-chip layout is decomposed into a grid of overlapping
// tiles (a core region each tile owns plus an optical-influence halo
// sized from the SOCS kernel support), the tiles are optimized
// concurrently on litho sessions sharing one immutable resource bank,
// and a halo-stitching consistency pass blends ψ across tile seams and
// re-optimizes disagreeing tiles from the blended consensus until the
// seams converge.
//
// The tile window always equals the resource bank's simulation grid
// (GridSize·PixelNM nm), so every tile reuses the bank's kernel banks
// and FFT plans unchanged; the spectral wraparound a periodic FFT
// introduces at window edges reaches at most the optical-influence
// radius inward, which is exactly the halo band the blending weights
// suppress — the core region each tile contributes is unaffected by
// construction (DESIGN.md §11).
package tiling

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lsopc/internal/core"
	"lsopc/internal/engine"
	"lsopc/internal/fft"
	"lsopc/internal/geom"
	"lsopc/internal/grid"
	"lsopc/internal/levelset"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
	"lsopc/internal/rt"
	"lsopc/internal/solve"
)

// Tile is one window of the decomposition: Core is the chip region this
// tile owns (cores partition the chip exactly), Window the simulation
// extent including halos. Both are in nm, half-open, chip coordinates.
type Tile struct {
	Index  int
	IX, IY int
	Window geom.Rect
	Core   geom.Rect
}

// Grid is a full tile decomposition of a chip.
type Grid struct {
	NX, NY   int
	ChipW    int // nm
	ChipH    int // nm
	WindowNM int
	HaloNM   int
	CoreNM   int
	Tiles    []Tile
}

// Decompose splits a chipW×chipH nm canvas into tiles whose windows are
// exactly windowNM square. Cores are windowNM−2·haloNM and partition
// the chip; windows extend each core by haloNM per side, clamped into
// the chip (so edge windows keep their full extent by shifting inward,
// and their cores sit deeper than haloNM from the window edge). A chip
// no larger than the window yields a single tile.
func Decompose(chipW, chipH, windowNM, haloNM int) (*Grid, error) {
	if windowNM <= 0 {
		return nil, fmt.Errorf("tiling: window %d nm must be positive", windowNM)
	}
	if haloNM < 0 || 2*haloNM >= windowNM {
		return nil, fmt.Errorf("tiling: halo %d nm must satisfy 0 ≤ 2·halo < window %d nm", haloNM, windowNM)
	}
	if chipW < windowNM || chipH < windowNM {
		return nil, fmt.Errorf("tiling: chip %dx%d nm smaller than the %d nm tile window", chipW, chipH, windowNM)
	}
	coreNM := windowNM - 2*haloNM
	nx, ny := ceilDiv(chipW, coreNM), ceilDiv(chipH, coreNM)
	if chipW == windowNM {
		nx = 1
	}
	if chipH == windowNM {
		ny = 1
	}
	g := &Grid{
		NX: nx, NY: ny,
		ChipW: chipW, ChipH: chipH,
		WindowNM: windowNM, HaloNM: haloNM, CoreNM: coreNM,
		Tiles: make([]Tile, 0, nx*ny),
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			core := geom.Rect{
				X0: ix * coreNM, Y0: iy * coreNM,
				X1: min((ix+1)*coreNM, chipW), Y1: min((iy+1)*coreNM, chipH),
			}
			if nx == 1 {
				core.X0, core.X1 = 0, chipW
			}
			if ny == 1 {
				core.Y0, core.Y1 = 0, chipH
			}
			wx := clamp(core.X0-haloNM, 0, chipW-windowNM)
			wy := clamp(core.Y0-haloNM, 0, chipH-windowNM)
			g.Tiles = append(g.Tiles, Tile{
				Index: len(g.Tiles), IX: ix, IY: iy,
				Window: geom.Rect{X0: wx, Y0: wy, X1: wx + windowNM, Y1: wy + windowNM},
				Core:   core,
			})
		}
	}
	return g, nil
}

// Options configures a tiled optimization.
type Options struct {
	// HaloNM is the optical-influence overlap per tile side. 0 derives
	// it from the resource bank's SOCS kernel energy support
	// (DefaultHaloNM), which is the physically meaningful choice.
	HaloNM int
	// Workers is the number of concurrent tile sessions; the engine's
	// workers are partitioned across them (Engine.Split). 0 uses one
	// worker per engine worker, capped at the tile count.
	Workers int
	// Core is the per-tile optimizer schedule for the initial
	// independent sweep (iteration budget, multi-res schedule, …).
	Core core.Options
	// StitchPasses bounds the halo-stitching consistency passes after
	// the initial sweep; 0 defaults to 2, negative disables stitching.
	StitchPasses int
	// StitchIters is the per-tile iteration budget inside a stitch
	// pass; 0 defaults to max(4, Core.MaxIter/4).
	StitchIters int
	// SeamTolerance is the convergence criterion: the worst mask
	// disagreement fraction over all tile-pair overlap regions must
	// fall to or below this; 0 defaults to 0.01.
	SeamTolerance float64
	// Sink receives tile_start/tile_done/stitch_pass events plus each
	// tile optimizer's iteration stream (tile runs are tagged
	// "<TraceID>.t<index>").
	Sink obs.Sink
	// TraceID tags the run's events.
	TraceID string
	// Health is the per-tile numerical-health watchdog policy. A tile
	// whose optimizer aborts fails the whole tiled run with a
	// *TileAbortError and cancels the remaining tiles.
	Health *obs.HealthPolicy
	// PoisonTile, when > 0, NaN-poisons one pixel of that tile's
	// rasterised target (1-based ordinal) before optimization — fault
	// injection for exercising the watchdog-abort and postmortem-capture
	// path from the CLI and CI without a genuinely broken layout.
	PoisonTile int
}

// TileStat is the per-tile outcome of a tiled run.
type TileStat struct {
	Tile
	Empty      bool // no chip geometry intersected the window
	Iterations int  // total across the sweep and stitch passes
	Converged  bool // last optimizer run stopped on tolerance
	Dur        time.Duration
}

// Result is a completed tiled optimization.
type Result struct {
	Mask  *grid.Field // chip-resolution binary mask
	Psi   *grid.Field // blended chip-resolution level-set function
	Grid  *Grid
	Tiles []TileStat
	// Passes is the number of stitch passes run; Seam the final worst
	// overlap disagreement fraction; SeamConverged whether it is at or
	// below the tolerance.
	Passes        int
	Seam          float64
	SeamConverged bool
	Workers       int
	Elapsed       time.Duration
}

// TileAbortError reports a tile whose optimizer the health watchdog
// aborted; it fails the whole tiled run. It carries enough context for
// a postmortem: the tile's run id and chip window, and the solver
// checkpoint at the aborted boundary (re-rasterize the window's clip to
// rebuild the tile target and resume for bisection).
type TileAbortError struct {
	Tile   int    // tile index (0-based)
	Reason string // obs.Health* reason code
	// Trace is the tile run's id ("<job>.t<n>").
	Trace string
	// Window is the tile's simulation window in chip nm coordinates.
	Window geom.Rect
	// Checkpoint is the aborted tile optimizer's resumable state (nil
	// when the abort predates checkpoint capture).
	Checkpoint *solve.Checkpoint
}

// Error implements error.
func (e *TileAbortError) Error() string {
	return fmt.Sprintf("tiling: tile %d aborted: %s", e.Tile, e.Reason)
}

// poisonTile, when non-nil, mutates a tile's rasterised target before
// optimization — the test hook behind the NaN-poisoned-tile watchdog
// test.
var poisonTile func(tile int, target *grid.Field)

// DefaultHaloNM derives the halo from the bank's SOCS kernel support:
// the radius containing 99.9% of the combined spatial kernel's energy
// (the worse of the nominal and defocus banks), in nm, rounded up to a
// pixel multiple and clamped to [1 px, window/4]. Beyond this radius a
// feature has no meaningful optical influence, so tiles overlapping by
// it see every neighbour feature that can affect their core.
func DefaultHaloNM(res *rt.Bank, eng *engine.Engine) int {
	n := res.GridSize()
	pitch := int(res.Optics().PixelNM)
	if pitch < 1 {
		pitch = 1
	}
	r := kernelEnergyRadius(res.Nominal().Combined.Dense(n), eng)
	if dr := kernelEnergyRadius(res.Defocus().Combined.Dense(n), eng); dr > r {
		r = dr
	}
	halo := r * pitch
	if maxHalo := (n * pitch) / 4; halo > maxHalo {
		halo = maxHalo
	}
	if halo < pitch {
		halo = pitch
	}
	return halo
}

// kernelEnergyRadius inverse-transforms a dense spectral kernel and
// returns the integer pixel radius containing 99.9% of its spatial
// energy (|h|², wraparound distances from the origin).
func kernelEnergyRadius(spec *grid.CField, eng *engine.Engine) int {
	fft.NewPlan2D(spec.W, spec.H, eng).Inverse(spec)
	n := spec.W
	byRadius := make([]float64, n)
	total := 0.0
	for y := 0; y < spec.H; y++ {
		dy := y
		if dy > n-dy {
			dy = n - dy
		}
		for x := 0; x < n; x++ {
			dx := x
			if dx > n-dx {
				dx = n - dx
			}
			v := spec.Data[y*n+x]
			e := real(v)*real(v) + imag(v)*imag(v)
			r := int(math.Ceil(math.Hypot(float64(dx), float64(dy))))
			if r >= len(byRadius) {
				r = len(byRadius) - 1
			}
			byRadius[r] += e
			total += e
		}
	}
	if total <= 0 {
		return 1
	}
	cum := 0.0
	for r, e := range byRadius {
		cum += e
		if cum >= 0.999*total {
			return max(r, 1)
		}
	}
	return n / 2
}

// Optimize runs the full tiled optimization of chip on the given
// resource bank (whose grid defines the tile window), engine and
// configuration. See the package comment for the algorithm.
//
// Cancelling ctx stops the run promptly: in-flight tiles observe the
// cancellation at their next iteration boundary, queued tiles and
// pending stitch passes are skipped, and the error unwraps to the
// context's error. A cancelled tiled run is not checkpointable — tiles
// restart from the blended consensus anyway, so a resume re-runs the
// interrupted pass.
func Optimize(ctx context.Context, res *rt.Bank, cfg litho.Config, eng *engine.Engine, chip *geom.Layout, opts Options) (*Result, error) {
	start := time.Now()
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	pitch := int(cfg.Optics.PixelNM)
	if float64(pitch) != cfg.Optics.PixelNM || pitch <= 0 {
		return nil, fmt.Errorf("tiling: non-integer pixel pitch %g nm", cfg.Optics.PixelNM)
	}
	if chip.W%pitch != 0 || chip.H%pitch != 0 {
		return nil, fmt.Errorf("tiling: pitch %d nm does not divide chip %dx%d nm", pitch, chip.W, chip.H)
	}
	if eng == nil {
		eng = engine.CPU()
	}
	windowNM := cfg.Optics.GridSize * pitch
	halo := opts.HaloNM
	if halo == 0 {
		halo = DefaultHaloNM(res, eng)
	}
	if halo%pitch != 0 {
		halo += pitch - halo%pitch
	}
	g, err := Decompose(chip.W, chip.H, windowNM, halo)
	if err != nil {
		return nil, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = eng.Workers()
	}
	workers = min(max(workers, 1), len(g.Tiles))
	stitchPasses := opts.StitchPasses
	if stitchPasses == 0 {
		stitchPasses = 2
	}
	stitchIters := opts.StitchIters
	if stitchIters == 0 {
		stitchIters = max(4, opts.Core.MaxIter/4)
	}
	seamTol := opts.SeamTolerance
	if seamTol == 0 {
		seamTol = 0.01
	}

	r := &runner{
		res: res, cfg: cfg, pitch: pitch,
		chip: chip, grid: g,
		opts: opts, stitchIters: stitchIters,
		subs:  eng.Split(workers),
		psis:  make([]*grid.Field, len(g.Tiles)),
		stats: make([]TileStat, len(g.Tiles)),
	}
	for i := range r.stats {
		r.stats[i].Tile = g.Tiles[i]
	}

	// Initial independent sweep over every tile.
	all := make([]int, len(g.Tiles))
	for i := range all {
		all[i] = i
	}
	if err := r.runPass(ctx, 0, all, nil); err != nil {
		return nil, err
	}

	// Halo-stitching consistency passes: blend ψ across seams, re-run
	// tiles that still disagree with a neighbour from the blended
	// consensus, until the worst seam disagreement converges.
	seam, dirty := r.seamDisagreement(seamTol)
	passes := 0
	for p := 1; p <= stitchPasses && seam > seamTol && len(dirty) > 0; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		passStart := time.Now()
		chipPsi := r.blend()
		if err := r.runPass(ctx, p, dirty, chipPsi); err != nil {
			return nil, err
		}
		seam, dirty = r.seamDisagreement(seamTol)
		passes = p
		if opts.Sink != nil {
			opts.Sink.Emit(obs.Event{
				Type: obs.EventStitchPass, Trace: opts.TraceID,
				Pass: p, N: len(r.lastRun), Seam: seam, Hit: seam <= seamTol,
				DurNS: time.Since(passStart).Nanoseconds(),
			})
		}
	}

	chipPsi := r.blend()
	mask := grid.NewField(chipPsi.W, chipPsi.H)
	levelset.MaskFromPsi(mask, chipPsi)
	return &Result{
		Mask: mask, Psi: chipPsi, Grid: g,
		Tiles:  r.stats,
		Passes: passes, Seam: seam, SeamConverged: seam <= seamTol,
		Workers: workers,
		Elapsed: time.Since(start),
	}, nil
}

// runner holds the shared state of one tiled run.
type runner struct {
	res   *rt.Bank
	cfg   litho.Config
	pitch int
	chip  *geom.Layout
	grid  *Grid
	opts  Options
	subs  []*engine.Engine

	stitchIters int
	lastRun     []int

	mu      sync.Mutex
	psis    []*grid.Field // per-tile window ψ (nil for empty tiles)
	stats   []TileStat
	aborted atomic.Bool
	failure error // first tile abort or hard error
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.failure == nil {
		r.failure = err
	}
	r.mu.Unlock()
	r.aborted.Store(true)
}

// runPass optimizes the listed tiles concurrently across the worker
// sub-engines. pass 0 is the independent sweep; later passes re-start
// each tile from its window slice of the blended chip ψ with the stitch
// iteration budget.
func (r *runner) runPass(ctx context.Context, pass int, tiles []int, chipPsi *grid.Field) error {
	r.lastRun = tiles
	idx := make(chan int)
	var wg sync.WaitGroup
	nw := min(len(r.subs), len(tiles))
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(sub *engine.Engine) {
			defer wg.Done()
			// Label the worker goroutine with the owning job so CPU
			// profiles attribute tile work to the tiled run; per-tile
			// run_id/phase labels are layered on inside runTile. Labels
			// inherit into the engine goroutines the tile optimizer spawns.
			pprof.Do(ctx, pprof.Labels("job", r.opts.TraceID), func(ctx context.Context) {
				sim, err := litho.NewSession(r.res, r.cfg, sub)
				if err != nil {
					r.fail(err)
					for range idx {
					}
					return
				}
				defer sim.Release()
				for ti := range idx {
					// Drain the queue even once failed or cancelled so the
					// feeder below never blocks.
					if r.aborted.Load() {
						continue
					}
					if err := ctx.Err(); err != nil {
						r.fail(err)
						continue
					}
					if err := r.runTileLabeled(ctx, sim, ti, pass, chipPsi); err != nil {
						r.fail(err)
					}
				}
			})
		}(r.subs[w])
	}
	for _, ti := range tiles {
		idx <- ti
	}
	close(idx)
	wg.Wait()
	r.mu.Lock()
	err := r.failure
	r.mu.Unlock()
	return err
}

// runTileLabeled runs one tile under a `tile` pprof label (1-based
// ordinal, matching the trace events).
func (r *runner) runTileLabeled(ctx context.Context, sim *litho.Simulator, ti, pass int, chipPsi *grid.Field) (err error) {
	pprof.Do(ctx, pprof.Labels("tile", strconv.Itoa(ti+1)), func(ctx context.Context) {
		err = r.runTile(ctx, sim, ti, pass, chipPsi)
	})
	return err
}

// runTile optimizes one tile window on the worker's simulator.
func (r *runner) runTile(ctx context.Context, sim *litho.Simulator, ti, pass int, chipPsi *grid.Field) error {
	t := r.grid.Tiles[ti]
	clip := r.chip.Clip(t.Window)
	wpx := r.grid.WindowNM / r.pitch
	if clip.ShapeCount() == 0 {
		// Nothing to print in this window: ψ is uniformly exterior.
		psi := grid.NewField(wpx, wpx)
		psi.Fill(float64(wpx))
		r.mu.Lock()
		r.psis[ti] = psi
		r.stats[ti].Empty = true
		r.mu.Unlock()
		return nil
	}
	target, err := geom.Rasterize(clip, r.pitch)
	if err != nil {
		return err
	}
	if poisonTile != nil {
		poisonTile(ti, target)
	}
	if r.opts.PoisonTile == ti+1 {
		target.Data[len(target.Data)/2] = math.NaN()
	}

	topts := r.opts.Core
	topts.Sink = r.opts.Sink
	topts.Health = r.opts.Health
	topts.TraceID = fmt.Sprintf("%s.t%d", r.opts.TraceID, ti+1)
	if pass > 0 {
		topts.InitialPsi = chipPsi.SubRegion(t.Window.X0/r.pitch, t.Window.Y0/r.pitch, wpx, wpx)
		topts.MaxIter = r.stitchIters
		topts.MultiResFactor = 0
		topts.IterOffset = r.opts.Core.MaxIter + (pass-1)*r.stitchIters
	}
	if r.opts.Sink != nil {
		sim.SetSink(r.opts.Sink, topts.TraceID)
		r.opts.Sink.Emit(obs.Event{
			Type: obs.EventTileStart, Trace: r.opts.TraceID,
			Tile: ti + 1, Pass: pass,
			Name: fmt.Sprintf("core[%d,%d)x[%d,%d)", t.Core.X0, t.Core.X1, t.Core.Y0, t.Core.Y1),
		})
	}
	start := time.Now()
	res, err := core.RunMultiResolution(ctx, sim, target, topts)
	if err != nil {
		return err
	}
	dur := time.Since(start)
	if r.opts.Sink != nil {
		r.opts.Sink.Emit(obs.Event{
			Type: obs.EventTileDone, Trace: r.opts.TraceID,
			Tile: ti + 1, Pass: pass,
			Iter: res.Iterations, Hit: res.Converged,
			DurNS: dur.Nanoseconds(),
		})
	}
	r.mu.Lock()
	r.psis[ti] = res.Psi
	r.stats[ti].Iterations += res.Iterations
	r.stats[ti].Converged = res.Converged
	r.stats[ti].Dur += dur
	r.mu.Unlock()
	if res.Aborted {
		return &TileAbortError{
			Tile: ti, Reason: res.AbortReason,
			Trace:      topts.TraceID,
			Window:     t.Window,
			Checkpoint: res.AbortCheckpoint,
		}
	}
	return nil
}

// blend accumulates every tile's window ψ into a chip-resolution field
// under separable ramp weights: weight rises linearly from the window
// edge over the halo width, is 1 throughout the core, and window sides
// flush with the chip edge (clamped windows) weigh 1 since no other
// tile covers them. The accumulated sum is normalised by the weight
// sum, so single-coverage pixels pass through exactly and seam pixels
// cross-fade between neighbours.
func (r *runner) blend() *grid.Field {
	cw, ch := r.chip.W/r.pitch, r.chip.H/r.pitch
	num, den := grid.NewField(cw, ch), grid.NewField(cw, ch)
	haloPx := r.grid.HaloNM / r.pitch
	wpx := r.grid.WindowNM / r.pitch
	ramp := func(dLo, dHi int, openLo, openHi bool) float64 {
		w := 1.0
		if openLo && haloPx > 0 {
			w = math.Min(w, float64(dLo+1)/float64(haloPx))
		}
		if openHi && haloPx > 0 {
			w = math.Min(w, float64(dHi+1)/float64(haloPx))
		}
		return w
	}
	for ti, psi := range r.psis {
		if psi == nil {
			continue
		}
		t := r.grid.Tiles[ti]
		x0, y0 := t.Window.X0/r.pitch, t.Window.Y0/r.pitch
		for y := 0; y < wpx; y++ {
			wy := ramp(y, wpx-1-y, t.Window.Y0 > 0, t.Window.Y1 < r.chip.H)
			srow := psi.Row(y)
			nrow := num.Row(y0 + y)
			drow := den.Row(y0 + y)
			for x := 0; x < wpx; x++ {
				w := wy * ramp(x, wpx-1-x, t.Window.X0 > 0, t.Window.X1 < r.chip.W)
				nrow[x0+x] += w * srow[x]
				drow[x0+x] += w
			}
		}
	}
	for i, d := range den.Data {
		if d > 0 {
			num.Data[i] /= d
		}
	}
	return num
}

// seamDisagreement returns the worst mask disagreement fraction over
// every overlapping tile pair's shared window region, plus the indices
// of non-empty tiles involved in a pair above the tolerance (the tiles
// a stitch pass re-optimizes).
func (r *runner) seamDisagreement(tol float64) (float64, []int) {
	worst := 0.0
	dirtySet := map[int]bool{}
	inside := func(ti, cx, cy int) bool {
		psi := r.psis[ti]
		if psi == nil {
			return false
		}
		t := r.grid.Tiles[ti]
		return psi.At(cx-t.Window.X0/r.pitch, cy-t.Window.Y0/r.pitch) < 0
	}
	for i := 0; i < len(r.grid.Tiles); i++ {
		for j := i + 1; j < len(r.grid.Tiles); j++ {
			ov := r.grid.Tiles[i].Window.Intersect(r.grid.Tiles[j].Window)
			if ov.Empty() {
				continue
			}
			px0, py0 := ov.X0/r.pitch, ov.Y0/r.pitch
			px1, py1 := ov.X1/r.pitch, ov.Y1/r.pitch
			area := (px1 - px0) * (py1 - py0)
			if area == 0 {
				continue
			}
			cnt := 0
			for cy := py0; cy < py1; cy++ {
				for cx := px0; cx < px1; cx++ {
					if inside(i, cx, cy) != inside(j, cx, cy) {
						cnt++
					}
				}
			}
			frac := float64(cnt) / float64(area)
			if frac > worst {
				worst = frac
			}
			if frac > tol {
				if !r.stats[i].Empty {
					dirtySet[i] = true
				}
				if !r.stats[j].Empty {
					dirtySet[j] = true
				}
			}
		}
	}
	dirty := make([]int, 0, len(dirtySet))
	for ti := range dirtySet {
		dirty = append(dirty, ti)
	}
	sortInts(dirty)
	return worst, dirty
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
