package tiling

import (
	"context"

	"errors"
	"math"
	"sync/atomic"
	"testing"

	"lsopc/internal/core"
	"lsopc/internal/engine"
	"lsopc/internal/geom"
	"lsopc/internal/grid"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
	"lsopc/internal/rt"
	"lsopc/internal/solve"
)

func TestDecomposeGeometry(t *testing.T) {
	g, err := Decompose(3072, 3072, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 2 || g.NY != 2 || len(g.Tiles) != 4 {
		t.Fatalf("grid %dx%d (%d tiles), want 2x2", g.NX, g.NY, len(g.Tiles))
	}
	if g.CoreNM != 2048-2*256 {
		t.Fatalf("core %d, want %d", g.CoreNM, 2048-2*256)
	}
	coreArea := 0
	for i, tl := range g.Tiles {
		if tl.Window.W() != 2048 || tl.Window.H() != 2048 {
			t.Fatalf("tile %d window %+v not 2048 square", i, tl.Window)
		}
		if tl.Window.X0 < 0 || tl.Window.Y0 < 0 || tl.Window.X1 > 3072 || tl.Window.Y1 > 3072 {
			t.Fatalf("tile %d window %+v outside chip", i, tl.Window)
		}
		// The core must sit at least a halo away from every window edge
		// that is not flush with the chip edge.
		if tl.Window.X0 > 0 && tl.Core.X0-tl.Window.X0 < 256 {
			t.Fatalf("tile %d core %+v closer than halo to window %+v", i, tl.Core, tl.Window)
		}
		if tl.Window.X1 < 3072 && tl.Window.X1-tl.Core.X1 < 256 {
			t.Fatalf("tile %d core %+v closer than halo to window %+v", i, tl.Core, tl.Window)
		}
		coreArea += tl.Core.Area()
		for j := 0; j < i; j++ {
			if tl.Core.Intersects(g.Tiles[j].Core) {
				t.Fatalf("cores %d and %d overlap", i, j)
			}
		}
	}
	if coreArea != 3072*3072 {
		t.Fatalf("cores cover %d nm², want %d (must partition the chip)", coreArea, 3072*3072)
	}
}

func TestDecomposeSingleTile(t *testing.T) {
	g, err := Decompose(2048, 2048, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tiles) != 1 {
		t.Fatalf("%d tiles for chip == window, want 1", len(g.Tiles))
	}
	tl := g.Tiles[0]
	if tl.Core != (geom.Rect{X0: 0, Y0: 0, X1: 2048, Y1: 2048}) || tl.Window != tl.Core {
		t.Fatalf("single tile core %+v window %+v", tl.Core, tl.Window)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(4096, 4096, 2048, 1024); err == nil {
		t.Fatal("2·halo == window accepted")
	}
	if _, err := Decompose(1024, 4096, 2048, 128); err == nil {
		t.Fatal("chip narrower than window accepted")
	}
	if _, err := Decompose(4096, 4096, 2048, -1); err == nil {
		t.Fatal("negative halo accepted")
	}
}

// testBank builds a small 64-px @ 16 nm bank (1024 nm window).
func testBank(t *testing.T, eng *engine.Engine) (*rt.Bank, litho.Config) {
	t.Helper()
	cfg := litho.DefaultConfig(64, 16)
	cfg.Optics.Kernels = 4
	res, err := rt.BankFor(cfg.Optics, cfg.DefocusNM, eng)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg
}

// testChip is a 1024×1536 nm chip: 1×3 tiles at a 1024 nm window with a
// 256 nm halo (core 512 nm), with features in every tile's core and one
// bar straddling a core seam.
func testChip() *geom.Layout {
	return &geom.Layout{
		Name: "chip-1x3", W: 1024, H: 1536,
		Rects: []geom.Rect{
			geom.NewRect(256, 200, 768, 328),   // tile 0 core
			geom.NewRect(256, 700, 768, 760),   // tile 1 core
			geom.NewRect(256, 960, 768, 1088),  // straddles the core seam at y=1024
			geom.NewRect(100, 1200, 228, 1400), // tile 2 core
		},
	}
}

func tileOpts(iters int) Options {
	co := core.DefaultOptions()
	co.MaxIter = iters
	return Options{
		HaloNM:        256,
		Core:          co,
		StitchPasses:  1,
		StitchIters:   2,
		SeamTolerance: 0.05,
	}
}

func TestTiledOptimizeEndToEnd(t *testing.T) {
	eng := engine.New("tiling-test", 2)
	res, cfg := testBank(t, eng)
	chip := testChip()
	sink := &obs.CollectorSink{}
	opts := tileOpts(4)
	opts.Sink = sink
	opts.TraceID = "job1"
	opts.Workers = 2
	result, err := Optimize(context.Background(), res, cfg, eng, chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	if result.Grid.NX != 1 || result.Grid.NY != 3 {
		t.Fatalf("grid %dx%d, want 1x3", result.Grid.NX, result.Grid.NY)
	}
	cw, ch := 1024/16, 1536/16
	if result.Mask.W != cw || result.Mask.H != ch {
		t.Fatalf("chip mask %dx%d, want %dx%d", result.Mask.W, result.Mask.H, cw, ch)
	}
	if result.Psi.W != cw || result.Psi.H != ch {
		t.Fatalf("chip psi %dx%d, want %dx%d", result.Psi.W, result.Psi.H, cw, ch)
	}
	for i, v := range result.Psi.Data {
		if math.IsNaN(v) {
			t.Fatalf("NaN in blended psi at %d", i)
		}
	}
	// The mask must print something near each feature: crude sanity that
	// every tile contributed (sum of mask pixels in each third).
	third := ch / 3
	for band := 0; band < 3; band++ {
		sum := 0.0
		for y := band * third; y < (band+1)*third; y++ {
			for x := 0; x < cw; x++ {
				sum += result.Mask.At(x, y)
			}
		}
		if sum == 0 {
			t.Fatalf("tile band %d printed nothing", band)
		}
	}

	// Trace structure: every non-empty tile emits tile_start+tile_done
	// per pass it ran, and stitch passes (if any) emit stitch_pass.
	var starts, dones, stitches int
	seenTile := map[int]bool{}
	for _, e := range sink.Events() {
		switch e.Type {
		case obs.EventTileStart:
			starts++
			if e.Tile < 1 || e.Tile > 3 {
				t.Fatalf("tile_start tile=%d out of range", e.Tile)
			}
			seenTile[e.Tile] = true
			if e.Trace != "job1" {
				t.Fatalf("tile_start trace %q", e.Trace)
			}
		case obs.EventTileDone:
			dones++
			if e.DurNS <= 0 {
				t.Fatalf("tile_done without duration: %+v", e)
			}
		case obs.EventStitchPass:
			stitches++
			if e.Pass < 1 || e.N < 1 {
				t.Fatalf("stitch_pass malformed: %+v", e)
			}
		}
	}
	if starts == 0 || starts != dones {
		t.Fatalf("tile_start=%d tile_done=%d", starts, dones)
	}
	if len(seenTile) != 3 {
		t.Fatalf("tiles seen %v, want all 3", seenTile)
	}
	if result.Passes != stitches {
		t.Fatalf("result.Passes=%d but %d stitch_pass events", result.Passes, stitches)
	}
	if result.Workers != 2 {
		t.Fatalf("workers = %d, want 2", result.Workers)
	}
}

func TestTiledEmptyTileSkipped(t *testing.T) {
	eng := engine.CPU()
	res, cfg := testBank(t, eng)
	// One feature above y=256: only tile 0's window (y ∈ [0,1024)) sees
	// it; tiles 1 and 2 (windows from y=256 and y=512) stay empty.
	chip := &geom.Layout{
		Name: "sparse", W: 1024, H: 1536,
		Rects: []geom.Rect{geom.NewRect(256, 100, 768, 200)},
	}
	opts := tileOpts(2)
	opts.StitchPasses = -1 // no stitching
	result, err := Optimize(context.Background(), res, cfg, eng, chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	empties := 0
	for _, st := range result.Tiles {
		if st.Empty {
			empties++
			if st.Iterations != 0 {
				t.Fatalf("empty tile %d ran %d iterations", st.Index, st.Iterations)
			}
		}
	}
	if empties == 0 {
		t.Fatal("no tile marked empty")
	}
	// Empty regions must print nothing.
	sum := 0.0
	for y := 1024 / 16; y < 1536/16; y++ {
		for x := 0; x < 1024/16; x++ {
			sum += result.Mask.At(x, y)
		}
	}
	if sum != 0 {
		t.Fatalf("empty tile region printed %g pixels", sum)
	}
}

// TestTiledNaNPoisonedTileAborts proves the watchdog fails the whole
// tiled run with a typed *TileAbortError when one tile's cost goes
// non-finite.
func TestTiledNaNPoisonedTileAborts(t *testing.T) {
	eng := engine.CPU()
	res, cfg := testBank(t, eng)
	chip := testChip()
	t.Cleanup(func() { poisonTile = nil })
	poisoned := 1
	poisonTile = func(tile int, target *grid.Field) {
		if tile == poisoned {
			target.Data[target.W*3+5] = math.NaN()
		}
	}
	hp := obs.DefaultHealthPolicy()
	opts := tileOpts(3)
	opts.Health = &hp
	opts.TraceID = "poison"
	_, err := Optimize(context.Background(), res, cfg, eng, chip, opts)
	if err == nil {
		t.Fatal("poisoned run succeeded")
	}
	var tae *TileAbortError
	if !errors.As(err, &tae) {
		t.Fatalf("error %T %v, want *TileAbortError", err, err)
	}
	if tae.Tile != poisoned {
		t.Fatalf("aborted tile %d, want %d", tae.Tile, poisoned)
	}
	if tae.Reason != obs.HealthNonFiniteCost {
		t.Fatalf("abort reason %q, want %q", tae.Reason, obs.HealthNonFiniteCost)
	}
}

// cancelOnIterationSink cancels the run's context on the first
// optimizer iteration event — the deterministic trigger for the
// concurrent-cancellation test. Emit runs on multiple worker
// goroutines; CancelFunc is safe for concurrent use.
type cancelOnIterationSink struct {
	cancel context.CancelFunc
	iters  atomic.Int64
}

func (s *cancelOnIterationSink) Emit(e obs.Event) {
	if e.Type == obs.EventIteration {
		s.iters.Add(1)
		s.cancel()
	}
}

// TestTiledCancelStopsWorkersPromptly cancels a concurrent tiled run
// mid-flight (run under -race in `make race`): the error must unwrap to
// context.Canceled, in-flight tiles must stop at the next iteration
// boundary instead of burning their budget, and the shared bank must
// come out clean enough to serve a fresh run.
func TestTiledCancelStopsWorkersPromptly(t *testing.T) {
	eng := engine.New("tiling-cancel", 2)
	res, cfg := testBank(t, eng)
	chip := testChip()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelOnIterationSink{cancel: cancel}

	co := core.DefaultOptions()
	co.MaxIter = 2000 // would run for minutes uncancelled…
	co.Tolerance = 0  // …because the velocity stop is disabled
	opts := Options{
		HaloNM:       256,
		Core:         co,
		StitchPasses: 2,
		Workers:      2,
		Sink:         sink,
		TraceID:      "cancel-me",
	}
	result, err := Optimize(ctx, res, cfg, eng, chip, opts)
	if err == nil {
		t.Fatal("cancelled tiled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	var cerr *solve.Cancelled
	if !errors.As(err, &cerr) {
		t.Fatalf("error %T %v, want the tile's *solve.Cancelled", err, err)
	}
	if result != nil {
		t.Fatal("cancelled run returned a result")
	}
	// Promptness: the cancellation fired on the very first iteration
	// event, so the two in-flight tiles stop at their next boundary and
	// the queued tile never starts — nowhere near the 3×2000 budget.
	if n := sink.iters.Load(); n > 100 {
		t.Fatalf("%d iteration events after cancellation, want a prompt stop", n)
	}

	// The bank and engine must come out clean: a fresh run on the same
	// resources succeeds (workers drained, no leaked or poisoned
	// sessions).
	res2, err := Optimize(context.Background(), res, cfg, eng, chip, tileOpts(2))
	if err != nil {
		t.Fatalf("follow-up run on the same bank failed: %v", err)
	}
	if res2.Mask == nil {
		t.Fatal("follow-up run returned no mask")
	}
}

func TestDefaultHaloNM(t *testing.T) {
	eng := engine.CPU()
	res, cfg := testBank(t, eng)
	halo := DefaultHaloNM(res, eng)
	window := cfg.Optics.GridSize * int(cfg.Optics.PixelNM)
	if halo < int(cfg.Optics.PixelNM) || halo > window/4 {
		t.Fatalf("derived halo %d nm outside [pitch, window/4=%d]", halo, window/4)
	}
	if halo%int(cfg.Optics.PixelNM) != 0 {
		t.Fatalf("halo %d not a pixel multiple", halo)
	}
}
