package lsopc

import (
	"io"
	"os"

	"lsopc/internal/gds"
	"lsopc/internal/geom"
)

// Geometry re-exports so custom layouts can be built against this
// package alone.
type (
	// Point is an integer nm coordinate pair.
	Point = geom.Point
	// Rect is a half-open axis-aligned rectangle [X0,X1)×[Y0,Y1).
	Rect = geom.Rect
	// Polygon is a closed rectilinear polygon.
	Polygon = geom.Polygon
)

// NewRect returns a rectangle with normalised corner order.
func NewRect(x0, y0, x1, y1 int) Rect { return geom.NewRect(x0, y0, x1, y1) }

// NewPolygon builds a rectilinear polygon from its vertex list (without
// repeating the first vertex).
func NewPolygon(pts ...Point) Polygon { return geom.NewPolygon(pts...) }

// NewLayout creates an empty named layout on a w×h nm canvas. Add shapes
// to Rects/Polys, then Validate before use.
func NewLayout(name string, w, h int) *Layout {
	return &Layout{Name: name, W: w, H: h}
}

// ParseGLP reads a layout from GLP text (see README for the format).
func ParseGLP(r io.Reader) (*Layout, error) { return geom.ParseGLP(r) }

// WriteGLP serialises a layout as GLP text.
func WriteGLP(w io.Writer, l *Layout) error { return geom.WriteGLP(w, l) }

// LoadGLP reads and validates a GLP layout file.
func LoadGLP(path string) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := geom.ParseGLP(f)
	if err != nil {
		return nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// SaveGLP writes a layout to a GLP file.
func SaveGLP(path string, l *Layout) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := geom.WriteGLP(f, l); err != nil {
		return err
	}
	return f.Close()
}

// VectorizeMask converts a binary mask raster into an exact rectangle
// partition in nm coordinates (see geom.VectorizeMask). Rasterising the
// result at the same pitch reproduces the mask bit-for-bit.
func VectorizeMask(mask *Field, pitchNM int) []Rect {
	return geom.VectorizeMask(mask, pitchNM)
}

// MaskToLayout wraps a vectorised mask as a named layout, ready for GLP
// export.
func MaskToLayout(name string, mask *Field, pitchNM int) *Layout {
	return geom.MaskToLayout(name, mask, pitchNM)
}

// WriteGDS serialises a layout as a GDSII stream (nanometre database
// units, one BOUNDARY per shape).
func WriteGDS(w io.Writer, l *Layout) error { return gds.Write(w, l) }

// ReadGDS parses a GDSII stream into a layout. canvasW/canvasH set the
// canvas extent (≤ 0 auto-sizes to the geometry's bounding box).
func ReadGDS(r io.Reader, canvasW, canvasH int) (*Layout, error) {
	return gds.Read(r, canvasW, canvasH)
}

// SaveGDS writes a layout to a GDSII file.
func SaveGDS(path string, l *Layout) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gds.Write(f, l); err != nil {
		return err
	}
	return f.Close()
}

// LoadGDS reads a GDSII file into a layout with the given canvas extent
// (≤ 0 auto-sizes).
func LoadGDS(path string, canvasW, canvasH int) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gds.Read(f, canvasW, canvasH)
}
