package lsopc

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestNewLayoutAndShapes(t *testing.T) {
	l := NewLayout("custom", 2048, 2048)
	l.Rects = append(l.Rects, NewRect(500, 500, 700, 900))
	l.Polys = append(l.Polys, NewPolygon(
		Point{X: 900, Y: 500}, Point{X: 1200, Y: 500}, Point{X: 1200, Y: 580},
		Point{X: 980, Y: 580}, Point{X: 980, Y: 900}, Point{X: 900, Y: 900},
	))
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 200*400 + (300*80 + 80*320)
	if l.Area() != want {
		t.Fatalf("area %d, want %d", l.Area(), want)
	}
}

func TestGLPFacadeRoundTrip(t *testing.T) {
	l := NewLayout("x", 256, 256)
	l.Rects = append(l.Rects, NewRect(10, 10, 60, 60))
	var buf bytes.Buffer
	if err := WriteGLP(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ParseGLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area() != l.Area() {
		t.Fatal("round trip changed area")
	}
}

func TestLoadSaveGLPFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.glp")
	l := NewLayout("a", 512, 512)
	l.Rects = append(l.Rects, NewRect(100, 100, 200, 200))
	if err := SaveGLP(path, l); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGLP(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "a" || got.Area() != 10000 {
		t.Fatalf("loaded %+v", got)
	}
	// LoadGLP validates: an invalid file must be rejected.
	bad := filepath.Join(dir, "bad.glp")
	invalid := NewLayout("bad", 100, 100)
	invalid.Rects = append(invalid.Rects, NewRect(50, 50, 200, 200)) // out of canvas
	if err := SaveGLP(bad, invalid); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGLP(bad); err == nil {
		t.Fatal("invalid layout accepted by LoadGLP")
	}
	if _, err := LoadGLP(filepath.Join(dir, "missing.glp")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestVectorizeFacade(t *testing.T) {
	mask := NewField(8, 8)
	mask.Set(2, 2, 1)
	mask.Set(3, 2, 1)
	rects := VectorizeMask(mask, 2)
	if len(rects) != 1 || rects[0] != NewRect(4, 4, 8, 6) {
		t.Fatalf("rects %+v", rects)
	}
	l := MaskToLayout("m", mask, 2)
	if l.W != 16 || l.Area() != 8 {
		t.Fatalf("layout %+v area %d", l, l.Area())
	}
}

func TestGDSFacadeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.gds")
	l := NewLayout("x", 512, 512)
	l.Rects = append(l.Rects, NewRect(100, 100, 200, 300))
	if err := SaveGDS(path, l); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGDS(path, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area() != l.Area() || got.Name != "x" {
		t.Fatalf("GDS round trip: %+v", got)
	}
	var buf bytes.Buffer
	if err := WriteGDS(&buf, l); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGDS(&buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGDS(filepath.Join(dir, "missing.gds"), 0, 0); err == nil {
		t.Fatal("missing GDS accepted")
	}
}
