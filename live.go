package lsopc

import (
	"context"

	"lsopc/internal/obs"
	"lsopc/internal/obs/recorder"
)

// Live-telemetry types, re-exported so downstream code only imports
// this package. See DESIGN.md §13–14.
type (
	// ObsServer is a running observability HTTP endpoint with graceful
	// Shutdown (returned by ServeMetrics and owned by LiveServer).
	ObsServer = obs.Server
	// TraceBus fans trace events out to dynamic subscribers over
	// bounded ring buffers without ever blocking the optimizer.
	TraceBus = obs.Bus
	// TraceSubscription is one consumer's bounded view of a TraceBus.
	TraceSubscription = obs.Subscription
	// RunRegistry folds trace events into live per-run state.
	RunRegistry = obs.RunRegistry
	// RunState is a point-in-time snapshot of one run.
	RunState = obs.RunState
	// RunIterPoint is one point of a run's recent iteration series.
	RunIterPoint = obs.RunIterPoint
	// FlightRecorder keeps per-run event tails and writes postmortem
	// bundles on anomalies (see DESIGN.md §14).
	FlightRecorder = recorder.Recorder
	// FlightRecorderConfig parameterises a FlightRecorder.
	FlightRecorderConfig = recorder.Config
	// BundleManifest indexes one postmortem bundle directory.
	BundleManifest = recorder.Manifest
	// BundleAnomaly describes one flight-recorder capture trigger.
	BundleAnomaly = recorder.Anomaly
)

// NewFlightRecorder builds a standalone flight recorder writing bundles
// under dir (see recorder.Config for the knobs; zero values pick sane
// defaults). Attach it to pipelines with WithFlightRecorder, or let
// ServeLive own one via WithFlightDir.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return recorder.New(cfg)
}

// OpenBundle reads and validates a postmortem bundle's manifest.
func OpenBundle(dir string) (*BundleManifest, error) { return recorder.Open(dir) }

// LiveServer bundles the live-telemetry stack: an event bus and run
// registry fed by trace sinks, served over HTTP (/runs, /runs/{id},
// /runs/{id}/events SSE, /runs/{id}/dump, /healthz, plus the
// /metrics·expvar·pprof endpoints). The HTTP server owns a periodic
// runtime sampler feeding process-health gauges; with WithFlightDir the
// server also owns a flight recorder that records every attached run
// and serves on-demand bundle captures. Build one with ServeLive,
// attach Sink() to pipelines (and SetRuntimeTrace), and Shutdown when
// done.
type LiveServer struct {
	bus  *obs.Bus
	runs *obs.RunRegistry
	rec  *recorder.Recorder
	srv  *obs.Server
}

// LiveOption customises ServeLive.
type LiveOption func(*liveConfig)

type liveConfig struct {
	flightDir string
}

// WithFlightDir equips the live server with a flight recorder writing
// postmortem bundles under dir, enabling POST /runs/{id}/dump and
// anomaly captures for pipelines attached via Sink().
func WithFlightDir(dir string) LiveOption {
	return func(c *liveConfig) { c.flightDir = dir }
}

// ServeLive starts the live observability endpoint on addr (":6060",
// "127.0.0.1:0", …) over the default metrics registry. The returned
// server's Sink() must be attached to the pipelines it should observe:
//
//	live, _ := lsopc.ServeLive(":6060", lsopc.WithFlightDir("flight"))
//	defer live.Shutdown(context.Background())
//	lsopc.SetRuntimeTrace(live.Sink())
//	pipe.WithTraceSink(lsopc.TeeTraceSink(jsonlSink, live.Sink()))
//
// With zero attached SSE clients the bus adds no allocations to the
// emit path; slow clients drop oldest events rather than slowing the
// run (see DESIGN.md §13).
func ServeLive(addr string, opts ...LiveOption) (*LiveServer, error) {
	var cfg liveConfig
	for _, o := range opts {
		o(&cfg)
	}
	bus := obs.NewBus(nil)
	runs := obs.NewRunRegistry(nil)
	var rec *recorder.Recorder
	var dumper obs.Dumper
	if cfg.flightDir != "" {
		// The recorder's capture events feed back through the registry
		// (Captures count) and the bus (SSE clients see the bundle land).
		rec = recorder.New(recorder.Config{
			Dir:  cfg.flightDir,
			Runs: runs,
			Sink: obs.TeeSink([]obs.Sink{runs, bus}),
		})
		dumper = rec
	}
	srv, err := obs.Serve(addr, obs.Default, runs, bus, dumper)
	if err != nil {
		if rec != nil {
			rec.Close()
		}
		return nil, err
	}
	return &LiveServer{bus: bus, runs: runs, rec: rec, srv: srv}, nil
}

// Sink returns the sink feeding this server's run registry, event bus
// and (when enabled) flight recorder. Compose it with other sinks via
// TeeTraceSink. The registry is first in the chain so a /runs poll
// triggered by an SSE event always sees that event already folded in.
func (l *LiveServer) Sink() TraceSink {
	if l.rec != nil {
		return obs.TeeSink([]obs.Sink{l.runs, l.bus, l.rec})
	}
	return obs.TeeSink([]obs.Sink{l.runs, l.bus})
}

// Addr returns the bound address (useful with ":0").
func (l *LiveServer) Addr() string { return l.srv.Addr() }

// Runs returns the live run registry.
func (l *LiveServer) Runs() *RunRegistry { return l.runs }

// Bus returns the live event bus (Subscribe for in-process consumers).
func (l *LiveServer) Bus() *TraceBus { return l.bus }

// Recorder returns the flight recorder, or nil when the server was
// built without WithFlightDir.
func (l *LiveServer) Recorder() *FlightRecorder { return l.rec }

// Err surfaces a serve failure, if any (see ObsServer.Err).
func (l *LiveServer) Err() error { return l.srv.Err() }

// Shutdown stops the flight recorder's sampler and gracefully stops the
// HTTP server (which stops the runtime sampler, unregisters its gauges
// and the bus counters, and closes active SSE streams), propagating any
// serve error.
func (l *LiveServer) Shutdown(ctx context.Context) error {
	if l.rec != nil {
		l.rec.Close()
	}
	return l.srv.Shutdown(ctx)
}
