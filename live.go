package lsopc

import (
	"context"
	"time"

	"lsopc/internal/obs"
)

// Live-telemetry types, re-exported so downstream code only imports
// this package. See DESIGN.md §13.
type (
	// ObsServer is a running observability HTTP endpoint with graceful
	// Shutdown (returned by ServeMetrics and owned by LiveServer).
	ObsServer = obs.Server
	// TraceBus fans trace events out to dynamic subscribers over
	// bounded ring buffers without ever blocking the optimizer.
	TraceBus = obs.Bus
	// TraceSubscription is one consumer's bounded view of a TraceBus.
	TraceSubscription = obs.Subscription
	// RunRegistry folds trace events into live per-run state.
	RunRegistry = obs.RunRegistry
	// RunState is a point-in-time snapshot of one run.
	RunState = obs.RunState
	// RunIterPoint is one point of a run's recent iteration series.
	RunIterPoint = obs.RunIterPoint
)

// LiveServer bundles the live-telemetry stack: an event bus and run
// registry fed by trace sinks, served over HTTP (/runs, /runs/{id},
// /runs/{id}/events SSE, /healthz, plus the /metrics·expvar·pprof
// endpoints), with a periodic runtime sampler feeding process-health
// gauges. Build one with ServeLive, attach Sink() to pipelines (and
// SetRuntimeTrace), and Shutdown when done.
type LiveServer struct {
	bus         *obs.Bus
	runs        *obs.RunRegistry
	srv         *obs.Server
	stopSampler func()
}

// ServeLive starts the live observability endpoint on addr (":6060",
// "127.0.0.1:0", …) over the default metrics registry. The returned
// server's Sink() must be attached to the pipelines it should observe:
//
//	live, _ := lsopc.ServeLive(":6060")
//	defer live.Shutdown(context.Background())
//	lsopc.SetRuntimeTrace(live.Sink())
//	pipe.WithTraceSink(lsopc.TeeTraceSink(jsonlSink, live.Sink()))
//
// With zero attached SSE clients the bus adds no allocations to the
// emit path; slow clients drop oldest events rather than slowing the
// run (see DESIGN.md §13).
func ServeLive(addr string) (*LiveServer, error) {
	bus := obs.NewBus(nil)
	runs := obs.NewRunRegistry(nil)
	srv, err := obs.Serve(addr, obs.Default, runs, bus)
	if err != nil {
		return nil, err
	}
	return &LiveServer{
		bus:         bus,
		runs:        runs,
		srv:         srv,
		stopSampler: obs.StartRuntimeSampler(nil, 5*time.Second),
	}, nil
}

// Sink returns the sink feeding this server's run registry and event
// bus. Compose it with other sinks via TeeTraceSink. The registry is
// first in the chain so a /runs poll triggered by an SSE event always
// sees that event already folded in.
func (l *LiveServer) Sink() TraceSink { return obs.TeeSink([]obs.Sink{l.runs, l.bus}) }

// Addr returns the bound address (useful with ":0").
func (l *LiveServer) Addr() string { return l.srv.Addr() }

// Runs returns the live run registry.
func (l *LiveServer) Runs() *RunRegistry { return l.runs }

// Bus returns the live event bus (Subscribe for in-process consumers).
func (l *LiveServer) Bus() *TraceBus { return l.bus }

// Err surfaces a serve failure, if any (see ObsServer.Err).
func (l *LiveServer) Err() error { return l.srv.Err() }

// Shutdown stops the sampler and gracefully stops the HTTP server,
// closing active SSE streams and propagating any serve error.
func (l *LiveServer) Shutdown(ctx context.Context) error {
	l.stopSampler()
	return l.srv.Shutdown(ctx)
}
