package lsopc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// liveRunState is the subset of the /runs JSON this test asserts on.
type liveRunState struct {
	ID       string   `json:"id"`
	Parent   string   `json:"parent"`
	Phase    string   `json:"phase"`
	Iter     int      `json:"iter"`
	Children []string `json:"children"`
	Tiles    *struct {
		Started       int     `json:"started"`
		Done          int     `json:"done"`
		Converged     int     `json:"converged"`
		Pass          int     `json:"pass"`
		Seam          float64 `json:"seam"`
		SeamConverged bool    `json:"seam_converged"`
	} `json:"tiles"`
}

type liveSSEFrame struct {
	event string
	data  map[string]any
}

// readSSEFrame parses one `event:`/`data:` frame off the stream.
func readSSEFrame(r *bufio.Reader) (liveSSEFrame, error) {
	var f liveSSEFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "" && f.event != "":
			return f, nil
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data); err != nil {
				return f, fmt.Errorf("bad data line %q: %w", line, err)
			}
		}
	}
}

func liveGetJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestLiveServerStreamsTiledRun is the end-to-end acceptance gate of the
// live-telemetry stack: a tiled benchmark run wired through
// ServeLive().Sink() must be visible on /runs with per-tile progress
// while it is still in flight, stream its tile/stitch events over SSE
// as they happen, and land in a consistent terminal state — all over
// real HTTP, with a clean Shutdown at the end.
func TestLiveServerStreamsTiledRun(t *testing.T) {
	live, err := ServeLive("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shut := false
	defer func() {
		if !shut {
			live.Shutdown(context.Background())
		}
	}()
	base := "http://" + live.Addr()

	p, err := NewCustomPipeline(64, 16, 4, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	opts := DefaultLevelSetOptions()
	opts.MaxIter = 4
	tileOpts := TileOptions{
		HaloNM:       256,
		Core:         opts,
		StitchPasses: 1,
		StitchIters:  2,
		Sink:         live.Sink(),
		TraceID:      "job1",
	}

	// Attach the SSE client before the run starts so the hello frame
	// proves the subscription is live before any event is emitted.
	sseCtx, sseCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer sseCancel()
	req, err := http.NewRequestWithContext(sseCtx, http.MethodGet,
		base+"/runs/job1/events?types=tile_start,tile_done,stitch_pass", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	sse := bufio.NewReader(resp.Body)
	if f, err := readSSEFrame(sse); err != nil || f.event != "hello" {
		t.Fatalf("first frame = %+v (err %v), want hello", f, err)
	}

	runDone := make(chan error, 1)
	var tiled *TiledResult
	go func() {
		r, err := p.OptimizeTiled(Benchmark("B1"), tileOpts)
		tiled = r
		runDone <- err
	}()

	// The first tile event must arrive while the run is still going —
	// that is the "live" in live telemetry. Right after it, the /runs
	// view must already show the job in flight with tile progress.
	first, err := readSSEFrame(sse)
	if err != nil {
		t.Fatalf("waiting for first tile event: %v", err)
	}
	if first.event != "tile_start" {
		t.Fatalf("first run event = %q, want tile_start", first.event)
	}
	if first.data["trace"] != "job1" {
		t.Fatalf("tile_start trace = %v, want job1", first.data["trace"])
	}
	var mid struct {
		Run liveRunState `json:"run"`
	}
	liveGetJSON(t, base+"/runs/job1", &mid)
	if mid.Run.Phase != "running" {
		t.Errorf("mid-run phase = %q, want running", mid.Run.Phase)
	}
	if mid.Run.Tiles == nil || mid.Run.Tiles.Started < 1 {
		t.Fatalf("mid-run tiles = %+v, want started >= 1", mid.Run.Tiles)
	}

	// Drain the stream until the run returns, tallying event kinds.
	counts := map[string]int{"tile_start": 1}
	sseDone := make(chan error, 1)
	go func() {
		for {
			f, err := readSSEFrame(sse)
			if err != nil {
				sseDone <- err
				return
			}
			counts[f.event]++
			if f.event == "stitch_pass" {
				sseDone <- nil
				return
			}
		}
	}()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if err := <-sseDone; err != nil {
		t.Fatalf("SSE stream broke before the stitch pass: %v", err)
	}
	nTiles := len(tiled.Grid.Tiles)
	if nTiles != 16 {
		t.Fatalf("decomposition has %d tiles, want 16", nTiles)
	}
	if counts["tile_start"] < nTiles || counts["tile_done"] < nTiles {
		t.Errorf("SSE saw %d tile_start / %d tile_done, want >= %d each (drops should not occur at this rate)",
			counts["tile_start"], counts["tile_done"], nTiles)
	}
	if counts["stitch_pass"] < 1 {
		t.Errorf("SSE saw no stitch_pass")
	}

	// Terminal state: the job is done with every tile accounted for and
	// linked to its sub-runs, which carry their own iteration series.
	var fin struct {
		Run        liveRunState `json:"run"`
		Iterations []struct {
			Iter int `json:"iter"`
		} `json:"iterations"`
	}
	liveGetJSON(t, base+"/runs/job1", &fin)
	if fin.Run.Phase != "done" {
		t.Errorf("final phase = %q, want done", fin.Run.Phase)
	}
	if fin.Run.Tiles == nil || fin.Run.Tiles.Started < nTiles || fin.Run.Tiles.Done < nTiles {
		t.Errorf("final tiles = %+v, want >= %d started and done", fin.Run.Tiles, nTiles)
	}
	if len(fin.Run.Children) != nTiles {
		t.Errorf("children = %d, want %d", len(fin.Run.Children), nTiles)
	}
	var child struct {
		Run        liveRunState `json:"run"`
		Iterations []struct {
			Iter int `json:"iter"`
		} `json:"iterations"`
	}
	liveGetJSON(t, base+"/runs/job1.t1", &child)
	if child.Run.Parent != "job1" || child.Run.Phase != "done" {
		t.Errorf("child = %+v, want parent job1, phase done", child.Run)
	}
	if len(child.Iterations) == 0 {
		t.Errorf("child iteration series is empty")
	}
	var list struct {
		Runs []liveRunState `json:"runs"`
	}
	liveGetJSON(t, base+"/runs", &list)
	found := false
	for _, r := range list.Runs {
		if r.ID == "job1" {
			found = true
		}
	}
	if !found {
		t.Errorf("/runs does not list job1 (got %d runs)", len(list.Runs))
	}
	var hz struct {
		Status string `json:"status"`
	}
	liveGetJSON(t, base+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Errorf("healthz status = %q", hz.Status)
	}

	// Graceful shutdown closes the (still-open) SSE stream and reports
	// no serve error.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := live.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	shut = true
	if err := live.Err(); err != nil {
		t.Fatalf("Err after shutdown: %v", err)
	}
}
