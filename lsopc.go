// Package lsopc is the public API of the level-set ILT mask-optimization
// library, a from-scratch Go reproduction of "A GPU-enabled Level Set
// Method for Mask Optimization" (Yu, Chen, Ma, Yu — DATE 2021).
//
// The package ties the substrates together behind a Pipeline: pick a
// Preset (resolution/quality trade-off), optimize a layout with the
// paper's level-set method or one of the pixel-based baselines, and
// evaluate the result with the ICCAD 2013 contest metrics.
//
//	pipe, _ := lsopc.NewPipeline(lsopc.PresetFast, lsopc.GPUEngine())
//	layout := lsopc.Benchmark("B4")
//	run, _ := pipe.OptimizeLevelSet(layout, lsopc.DefaultLevelSetOptions())
//	fmt.Println(run.Report)
package lsopc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lsopc/internal/core"
	"lsopc/internal/engine"
	"lsopc/internal/geom"
	"lsopc/internal/grid"
	"lsopc/internal/layouts"
	"lsopc/internal/litho"
	"lsopc/internal/metrics"
	"lsopc/internal/obs"
	"lsopc/internal/obs/recorder"
	"lsopc/internal/pixelilt"
	"lsopc/internal/procwin"
	"lsopc/internal/rt"
	"lsopc/internal/solve"
	"lsopc/internal/tiling"
)

// Re-exported types so downstream code only imports this package.
type (
	// Layout is a rectilinear design (see the GLP format in README).
	Layout = geom.Layout
	// Field is a dense 2-D image (masks, resist images, ψ).
	Field = grid.Field
	// Report carries the contest metrics of one evaluated mask.
	Report = metrics.Report
	// LevelSetOptions configures the paper's optimizer (Algorithm 1).
	LevelSetOptions = core.Options
	// LevelSetResult is the optimizer outcome with its history trace.
	LevelSetResult = core.Result
	// BaselineVariant selects a pixel-based baseline algorithm.
	BaselineVariant = pixelilt.Variant
	// Engine is the execution engine (CPU serial / GPU-style parallel).
	Engine = engine.Engine
	// BenchmarkSpec describes one ICCAD-2013-style benchmark.
	BenchmarkSpec = layouts.Spec
	// TraceSink receives structured trace events (see internal/obs).
	TraceSink = obs.Sink
	// TraceEvent is one structured trace event.
	TraceEvent = obs.Event
	// MetricsRegistry is a named set of counters/gauges/histograms.
	MetricsRegistry = obs.Registry
	// HealthPolicy configures the numerical-health watchdog (NaN/Inf
	// detection, stall and divergence windows, early abort).
	HealthPolicy = obs.HealthPolicy
	// Precision selects the forward model's batch arithmetic (see
	// litho.Precision): Float64 is the bit-exact default, Float32 the
	// reduced-precision fast path.
	Precision = litho.Precision
	// TileOptions configures a tiled full-chip optimization (halo
	// width, worker count, per-tile schedule, stitch budget).
	TileOptions = tiling.Options
	// TiledResult is a completed tiled optimization: the chip-scale
	// mask/ψ plus per-tile stats and seam convergence.
	TiledResult = tiling.Result
	// TileStat is the per-tile outcome inside a TiledResult.
	TileStat = tiling.TileStat
	// TileGrid is the tile decomposition (windows, cores, halo).
	TileGrid = tiling.Grid
	// TileAbortError reports the tile whose watchdog abort failed a
	// tiled run (errors.As-compatible).
	TileAbortError = tiling.TileAbortError
	// Checkpoint is the resumable state of a cancelled optimization
	// (level-set or baseline): the evolving field, iteration position,
	// step scale and watchdog windows. See internal/solve.
	Checkpoint = solve.Checkpoint
	// CancelledError is the error a cancelled optimization returns; it
	// carries the Checkpoint and unwraps to the context's error
	// (errors.Is(err, context.Canceled) works, errors.As recovers it).
	CancelledError = solve.Cancelled
)

// Forward-model precisions, re-exported.
const (
	Float64 = litho.Float64
	Float32 = litho.Float32
)

// ParsePrecision maps a flag value ("float64"/"f64"/"float32"/"f32") to
// a Precision.
func ParsePrecision(s string) (Precision, error) { return litho.ParsePrecision(s) }

// Trace event types emitted through a TraceSink.
const (
	EventIteration = obs.EventIteration // one optimizer step
	EventCorner    = obs.EventCorner    // one per-corner simulate span
	EventPlanCache = obs.EventPlanCache // one FFT plan-cache lookup
	EventPool      = obs.EventPool      // one field-pool lease/release
	EventSpan      = obs.EventSpan      // one pipeline job span
	EventProgress  = obs.EventProgress  // free-form progress line
	EventHealth    = obs.EventHealth    // one numerical-health verdict
	// EventLevelSwitch marks one coarse-to-fine resolution hand-off.
	EventLevelSwitch = obs.EventLevelSwitch
	// EventTileStart marks one tile optimization being picked up.
	EventTileStart = obs.EventTileStart
	// EventTileDone marks one tile optimization completing.
	EventTileDone = obs.EventTileDone
	// EventStitchPass summarizes one halo-stitching consistency pass.
	EventStitchPass = obs.EventStitchPass
	// EventCancelled marks a run observing its context cancellation.
	EventCancelled = obs.EventCancelled
	// EventCheckpoint marks a resumable checkpoint being captured.
	EventCheckpoint = obs.EventCheckpoint
	// EventCapture marks the flight recorder writing a postmortem
	// bundle (Msg = trigger reason, Name = bundle directory).
	EventCapture = obs.EventCapture
)

// WriteCheckpoint serialises a checkpoint to w (gob encoding).
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error { return solve.WriteCheckpoint(w, cp) }

// ReadCheckpoint deserialises a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return solve.ReadCheckpoint(r) }

// SaveCheckpoint writes a checkpoint file (atomic rename).
func SaveCheckpoint(path string, cp *Checkpoint) error { return solve.SaveCheckpoint(path, cp) }

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) { return solve.LoadCheckpoint(path) }

// DefaultHealthPolicy returns the standard watchdog configuration: all
// checks on, abort on the first unhealthy iteration.
func DefaultHealthPolicy() HealthPolicy { return obs.DefaultHealthPolicy() }

// NewJSONLTraceSink returns a sink writing one JSON object per event to
// w, safe for concurrent sessions (events get a total-order sequence
// number under one lock). Flush it when the run ends — Pipeline.Release
// does so for the pipeline's attached sink.
func NewJSONLTraceSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// NewLineTraceSink returns a sink rendering events as human-readable
// lines on w (progress events pass through verbatim).
func NewLineTraceSink(w io.Writer) *obs.LineSink { return obs.NewLineSink(w) }

// NewCollectorTraceSink returns an in-memory sink for tests.
func NewCollectorTraceSink() *obs.CollectorSink { return &obs.CollectorSink{} }

// TeeTraceSink fans events out to all the given sinks (nils skipped).
func TeeTraceSink(sinks ...TraceSink) TraceSink { return obs.TeeSink(sinks) }

// Metrics returns the process-wide default metrics registry that every
// subsystem (FFT plan cache, field pools, optimizer loop, simulator
// corners) records into unconditionally.
func Metrics() *MetricsRegistry { return obs.Default }

// MetricsSnapshot returns a flat name→value copy of the default
// registry (histograms expand to .count/.sum/.le* keys).
func MetricsSnapshot() map[string]float64 { return obs.Default.Snapshot() }

// ServeMetrics starts the observability HTTP endpoint on addr
// (/metrics, /debug/vars, /debug/pprof/*, /healthz) over the default
// registry and returns a handle exposing the bound address and a
// graceful Shutdown. For the live run endpoints (/runs, SSE, dump) use
// ServeLive instead. See DESIGN.md §9 and §13.
func ServeMetrics(addr string) (*ObsServer, error) {
	return obs.Serve(addr, obs.Default, nil, nil, nil)
}

// SetRuntimeTrace installs a process-wide sink for events that have no
// session in scope (plan-cache lookups, pool leases inside bank and
// session construction). Install it before building pipelines to catch
// construction-time events; pass nil to disable. The sink must be safe
// for concurrent use.
func SetRuntimeTrace(s TraceSink) { obs.SetRuntime(s) }

// FlushTrace flushes a sink if it buffers (nil-safe).
func FlushTrace(s TraceSink) error { return obs.Flush(s) }

// Baseline variants, re-exported.
const (
	MosaicFast  = pixelilt.MosaicFast
	MosaicExact = pixelilt.MosaicExact
	RobustOPC   = pixelilt.RobustOPC
	PVOPC       = pixelilt.PVOPC
)

// CPUEngine returns the serial reference engine (the paper's CPU runs).
func CPUEngine() *Engine { return engine.CPU() }

// GPUEngine returns the parallel engine standing in for the paper's
// CUDA acceleration (one worker per core; see DESIGN.md §4).
func GPUEngine() *Engine { return engine.GPU() }

// DefaultLevelSetOptions returns the paper's optimizer configuration.
func DefaultLevelSetOptions() LevelSetOptions { return core.DefaultOptions() }

// DefaultBaselineOptions returns the published schedule for a baseline.
func DefaultBaselineOptions(v BaselineVariant) pixelilt.Options {
	return pixelilt.DefaultOptions(v)
}

// Preset selects the simulation scale. All presets model the same
// 2048×2048 nm field; they differ in pixel pitch, kernel count and
// iteration budget (see EXPERIMENTS.md for the accuracy impact).
type Preset int

const (
	// PresetTest: 128 px @ 16 nm, 4 kernels — unit-test scale.
	PresetTest Preset = iota
	// PresetFast: 512 px @ 4 nm, 8 kernels — the default experiment
	// scale; a full benchmark optimizes in tens of seconds.
	PresetFast
	// PresetPaper: 2048 px @ 1 nm, 24 kernels — the contest's native
	// scale used by the paper (minutes per benchmark per method).
	PresetPaper
)

// PresetCustom marks a pipeline built with NewCustomPipeline (explicit
// grid/pitch/kernels instead of a named scale).
const PresetCustom Preset = -1

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case PresetTest:
		return "test"
	case PresetFast:
		return "fast"
	case PresetPaper:
		return "paper"
	case PresetCustom:
		return "custom"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// ParsePreset converts a flag string to a Preset.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "test":
		return PresetTest, nil
	case "fast":
		return PresetFast, nil
	case "paper":
		return PresetPaper, nil
	}
	return 0, fmt.Errorf("lsopc: unknown preset %q (want test|fast|paper)", s)
}

// params returns grid size, pixel pitch (nm) and kernel count.
func (p Preset) params() (gridSize int, pixelNM float64, kernels int, err error) {
	switch p {
	case PresetTest:
		return 128, 16, 4, nil
	case PresetFast:
		return 512, 4, 8, nil
	case PresetPaper:
		return 2048, 1, 24, nil
	default:
		return 0, 0, 0, fmt.Errorf("lsopc: invalid preset %d", int(p))
	}
}

// Pipeline is a cheap, concurrency-safe handle over one immutable
// resource bank: the SOCS kernel banks, FFT plans and rasterised-target
// cache derived once for its preset. All per-job mutable state lives in
// Sessions leased from the pipeline — OptimizeLevelSet, OptimizeBaseline,
// Evaluate, PrintedImages and ProcessWindow each acquire a session
// internally, so any number of goroutines may call them concurrently on
// one Pipeline; memory stays bounded by the number of simultaneous jobs,
// and idle session scratch is recycled through the shared pool.
type Pipeline struct {
	preset  Preset
	eng     *engine.Engine
	cfg     litho.Config
	res     *rt.Bank
	metrics metrics.Config

	// Observability: an optional trace sink shared by every session the
	// pipeline leases, and a counter assigning each session a stable
	// trace id ("s1", "s2", …) so events from concurrent jobs through
	// the shared sink stay distinguishable.
	sink     obs.Sink
	health   *obs.HealthPolicy
	flight   *recorder.Recorder
	traceSeq atomic.Int64

	mu   sync.Mutex
	free []*Session // idle sessions on p.eng, reused by Session()
	root *Session   // lazy never-closed session backing Simulator()
}

// PipelineOption configures optional pipeline behaviour.
type PipelineOption func(*Pipeline)

// WithTraceSink attaches a trace sink to the pipeline: every session it
// leases emits iteration, per-corner timing and job-span events tagged
// with a per-session trace id. The sink must be safe for concurrent use
// (JSONL and line sinks are). Pipeline.Release flushes it.
func WithTraceSink(s TraceSink) PipelineOption {
	return func(p *Pipeline) { p.sink = s }
}

// WithHealthPolicy attaches a numerical-health watchdog policy to the
// pipeline: every optimization it runs (level-set and pixel baselines)
// inherits the policy unless the per-run options carry their own.
// Unhealthy iterations emit typed health events to the pipeline's trace
// sink, and with AbortOnUnhealthy the run stops early, reporting
// Aborted/AbortReason in its result.
func WithHealthPolicy(hp HealthPolicy) PipelineOption {
	return func(p *Pipeline) { p.health = &hp }
}

// WithFlightRecorder attaches a flight recorder to the pipeline: every
// watchdog abort (NaN/Inf, stall, divergence — monolithic, multi-res or
// tiled) and every context cancellation triggers a postmortem bundle
// capture, including the run's resumable checkpoint when one exists.
// Captures are once-per-run; failures to capture degrade to a progress
// trace event rather than failing the run. The recorder only captures —
// to also fill its per-run event rings (the bundle's event tail), tee
// it into the pipeline's trace sink:
//
//	rec := lsopc.NewFlightRecorder(lsopc.FlightRecorderConfig{Dir: "flight"})
//	pipe, _ := lsopc.NewPipeline(preset, eng,
//	    lsopc.WithTraceSink(lsopc.TeeTraceSink(fileSink, rec)),
//	    lsopc.WithFlightRecorder(rec))
//
// (ServeLive's Sink() already includes its recorder, so pipelines fed
// from a live server with WithFlightDir just pass live.Recorder() here.)
func WithFlightRecorder(rec *FlightRecorder) PipelineOption {
	return func(p *Pipeline) { p.flight = rec }
}

// WithPrecision sets the pipeline's default forward-model precision:
// every session it leases runs its per-kernel field batches at this
// arithmetic. Float64 (the default) is the bit-exact reference path;
// Float32 halves the batch memory traffic for a ~1e-6-relative aerial
// error. Individual jobs can override via SessionPrecision.
func WithPrecision(prec Precision) PipelineOption {
	return func(p *Pipeline) { p.cfg.Precision = prec }
}

// NewPipeline builds a pipeline at the given preset on the given engine
// (nil defaults to the serial CPU engine). Construction is cheap after
// the first pipeline at a preset: the kernel banks, FFT plans and other
// derived resources are shared process-wide.
func NewPipeline(p Preset, eng *Engine, opts ...PipelineOption) (*Pipeline, error) {
	gridSize, pixelNM, kernels, err := p.params()
	if err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.CPU()
	}
	cfg := litho.DefaultConfig(gridSize, pixelNM)
	cfg.Optics.Kernels = kernels
	res, err := rt.BankFor(cfg.Optics, cfg.DefocusNM, eng)
	if err != nil {
		return nil, err
	}
	pipe := &Pipeline{
		preset:  p,
		eng:     eng,
		cfg:     cfg,
		res:     res,
		metrics: metrics.DefaultConfig(pixelNM),
	}
	for _, opt := range opts {
		opt(pipe)
	}
	return pipe, nil
}

// NewCustomPipeline builds a pipeline at an explicit simulation scale —
// gridSize pixels at pixelNM nm pitch with the given SOCS kernel count —
// instead of a named preset. This is how tiled runs pick a tile-window
// size independent of the preset canvases, and how monolithic reference
// runs cover chip-sized grids. The same process-wide bank sharing as
// NewPipeline applies (banks are keyed by the optics configuration).
func NewCustomPipeline(gridSize int, pixelNM float64, kernels int, eng *Engine, opts ...PipelineOption) (*Pipeline, error) {
	if eng == nil {
		eng = engine.CPU()
	}
	cfg := litho.DefaultConfig(gridSize, pixelNM)
	cfg.Optics.Kernels = kernels
	res, err := rt.BankFor(cfg.Optics, cfg.DefocusNM, eng)
	if err != nil {
		return nil, err
	}
	pipe := &Pipeline{
		preset:  PresetCustom,
		eng:     eng,
		cfg:     cfg,
		res:     res,
		metrics: metrics.DefaultConfig(pixelNM),
	}
	for _, opt := range opts {
		opt(pipe)
	}
	return pipe, nil
}

// TraceSink returns the sink attached with WithTraceSink, or nil.
func (p *Pipeline) TraceSink() TraceSink { return p.sink }

// FlightRecorder returns the recorder attached with WithFlightRecorder,
// or nil.
func (p *Pipeline) FlightRecorder() *FlightRecorder { return p.flight }

// captureAnomaly hands an abort or cancellation to the attached flight
// recorder. A capture failure must not fail the (already troubled) run,
// so it degrades to a progress trace event.
func (p *Pipeline) captureAnomaly(a BundleAnomaly) {
	if p.flight == nil || a.RunID == "" {
		return
	}
	if _, err := p.flight.CaptureAnomaly(a); err != nil && p.sink != nil {
		p.sink.Emit(obs.Event{
			Type:  obs.EventProgress,
			Trace: a.RunID,
			Msg:   fmt.Sprintf("flight recorder: %v", err),
		})
	}
}

// Preset returns the pipeline's preset.
func (p *Pipeline) Preset() Preset { return p.preset }

// Engine returns the pipeline's execution engine.
func (p *Pipeline) Engine() *Engine { return p.eng }

// Resources returns the pipeline's immutable resource bank.
func (p *Pipeline) Resources() *rt.Bank { return p.res }

// Simulator exposes a forward-model simulator for advanced use. The
// returned simulator is owned by the pipeline, lives until the process
// exits, and is NOT safe for concurrent use — concurrent callers should
// lease their own Session instead.
func (p *Pipeline) Simulator() *litho.Simulator {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.root == nil {
		s, err := newSession(p, p.eng)
		if err != nil {
			// The bank validated this exact configuration at pipeline
			// construction, so a session cannot fail to build.
			panic(fmt.Sprintf("lsopc: root session: %v", err))
		}
		p.root = s
	}
	return p.root.sim
}

// GridSize returns the simulation grid edge in pixels.
func (p *Pipeline) GridSize() int { return p.cfg.Optics.GridSize }

// PixelNM returns the simulation pixel pitch in nm.
func (p *Pipeline) PixelNM() float64 { return p.cfg.Optics.PixelNM }

// targetShared rasterises a layout onto the simulation grid through the
// bank's memoized target cache: one rasterization per layout pointer per
// bank, shared by every concurrent job. The returned field is read-only.
func (p *Pipeline) targetShared(l *Layout) (*Field, error) {
	return p.res.Target(l, func() (*grid.Field, error) {
		pitch := int(p.PixelNM())
		if float64(pitch) != p.PixelNM() {
			return nil, fmt.Errorf("lsopc: non-integer pixel pitch %g", p.PixelNM())
		}
		f, err := geom.Rasterize(l, pitch)
		if err != nil {
			return nil, err
		}
		if f.W != p.GridSize() {
			return nil, fmt.Errorf("lsopc: layout canvas %d nm does not match the %d-px grid at %d nm/px",
				l.W, p.GridSize(), pitch)
		}
		return f, nil
	})
}

// Target rasterises a layout onto the pipeline's simulation grid. The
// rasterization is served from the bank's cache; the returned field is a
// private copy the caller may modify.
func (p *Pipeline) Target(l *Layout) (*Field, error) {
	f, err := p.targetShared(l)
	if err != nil {
		return nil, err
	}
	return f.Clone(), nil
}

// Session is one leased unit of per-job mutable state: a simulator
// session on the pipeline's bank plus evaluation scratch. A Session is
// NOT safe for concurrent use — it is the thing you lease one of per
// goroutine. Close returns it to the pipeline for reuse.
type Session struct {
	p       *Pipeline
	eng     *engine.Engine
	sim     *litho.Simulator
	trace   string // per-session trace id ("s1", "s2", …) when tracing
	spec    *grid.CField
	printed *grid.Field
	outer   *grid.Field
	inner   *grid.Field
	closed  bool
}

// newSession builds a session on the given engine at the pipeline's
// default precision.
func newSession(p *Pipeline, eng *engine.Engine) (*Session, error) {
	return newSessionPrec(p, eng, p.cfg.Precision)
}

// newSessionPrec builds a session running the forward model at an
// explicit precision.
func newSessionPrec(p *Pipeline, eng *engine.Engine, prec litho.Precision) (*Session, error) {
	cfg := p.cfg
	cfg.Precision = prec
	sim, err := litho.NewSession(p.res, cfg, eng)
	if err != nil {
		return nil, err
	}
	n := p.GridSize()
	pool := p.res.Pool()
	s := &Session{
		p:       p,
		eng:     eng,
		sim:     sim,
		spec:    pool.CField(n, n),
		printed: pool.Field(n, n),
		outer:   pool.Field(n, n),
		inner:   pool.Field(n, n),
	}
	if p.sink != nil {
		s.trace = fmt.Sprintf("s%d", p.traceSeq.Add(1))
		sim.SetSink(p.sink, s.trace)
	}
	return s, nil
}

// TraceID returns the session's trace id ("" when the pipeline has no
// sink attached).
func (s *Session) TraceID() string { return s.trace }

// traceSpan emits one job-span event to the pipeline's sink.
func (s *Session) traceSpan(name string, start time.Time) {
	if s.p.sink != nil {
		s.p.sink.Emit(obs.Event{
			Type:   obs.EventSpan,
			Trace:  s.trace,
			Name:   name,
			Engine: s.eng.Name(),
			DurNS:  time.Since(start).Nanoseconds(),
		})
	}
}

// Session leases a session on the pipeline's engine, reusing an idle
// one when available (its warm simulator scratch carries over). Close
// the session when the job is done.
func (p *Pipeline) Session() (*Session, error) {
	return p.SessionPrecision(p.cfg.Precision)
}

// SessionPrecision leases a session running the forward model at an
// explicit precision, so float32 and float64 jobs can share one
// pipeline concurrently (e.g. fast exploratory runs next to bit-exact
// verification runs). Idle sessions are reused only when their
// precision matches; everything immutable (kernel banks, FFT plans,
// target cache) is shared regardless.
func (p *Pipeline) SessionPrecision(prec Precision) (*Session, error) {
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		s := p.free[i]
		if s.sim.Precision() != prec {
			continue
		}
		p.free = append(p.free[:i], p.free[i+1:]...)
		p.mu.Unlock()
		s.closed = false
		return s, nil
	}
	p.mu.Unlock()
	return newSessionPrec(p, p.eng, prec)
}

// SessionOn leases a session scheduled on a specific engine (e.g. one
// sub-engine of an Engine.Split partition). Sessions on engines other
// than the pipeline's return their scratch to the pool on Close instead
// of idling in the pipeline's free list.
func (p *Pipeline) SessionOn(eng *Engine) (*Session, error) {
	if eng == nil || eng == p.eng {
		return p.Session()
	}
	return newSession(p, eng)
}

// Sessions leases n sessions whose engines partition the pipeline's
// workers (Engine.Split), the layout for running n jobs concurrently
// without oversubscribing the machine. Close each session when done.
func (p *Pipeline) Sessions(n int) ([]*Session, error) {
	subs := p.eng.Split(n)
	out := make([]*Session, len(subs))
	for i, sub := range subs {
		s, err := newSession(p, sub)
		if err != nil {
			for _, prev := range out[:i] {
				prev.Close()
			}
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Close returns the session to its pipeline. Sessions on the pipeline's
// engine idle in the free list with their scratch warm; sessions on
// other engines release their leases back to the pool. Idempotent.
func (s *Session) Close() {
	if s == nil || s.closed {
		return
	}
	s.closed = true
	if s.eng == s.p.eng {
		s.p.mu.Lock()
		s.p.free = append(s.p.free, s)
		s.p.mu.Unlock()
		return
	}
	s.release()
}

// release returns every lease to the pool (used for non-pooled sessions
// and by Pipeline.Release).
func (s *Session) release() {
	pool := s.p.res.Pool()
	s.sim.Release()
	pool.PutCField(s.spec)
	pool.PutField(s.printed)
	pool.PutField(s.outer)
	pool.PutField(s.inner)
	s.spec, s.printed, s.outer, s.inner = nil, nil, nil, nil
}

// Release drains the pipeline's idle sessions (including the Simulator()
// session), returning their scratch to the shared pool, and flushes the
// attached trace sink so buffered events reach their writer. The
// pipeline remains usable; the bank itself is shared and unaffected.
// Release is idempotent: a second call with nothing left to drain is a
// no-op (beyond a harmless re-flush of the empty sink buffer).
func (p *Pipeline) Release() {
	p.mu.Lock()
	free := p.free
	root := p.root
	p.free, p.root = nil, nil
	p.mu.Unlock()
	for _, s := range free {
		s.release()
	}
	if root != nil {
		root.closed = true
		root.release()
	}
	obs.Flush(p.sink)
}

// Engine returns the engine the session schedules on.
func (s *Session) Engine() *Engine { return s.eng }

// Simulator exposes the session's forward model.
func (s *Session) Simulator() *litho.Simulator { return s.sim }

// RunResult is a complete optimize-and-evaluate outcome.
type RunResult struct {
	Method  string
	Mask    *Field
	Report  Report
	Elapsed time.Duration
	// LevelSet holds the optimizer trace when the level-set method ran
	// (nil for baselines).
	LevelSet *LevelSetResult
	// Baseline holds the baseline trace when a baseline ran.
	Baseline *pixelilt.Result
}

// OptimizeLevelSet runs the paper's optimizer on the layout and
// evaluates the resulting mask. Safe to call concurrently (each call
// leases its own session).
func (p *Pipeline) OptimizeLevelSet(l *Layout, opts LevelSetOptions) (*RunResult, error) {
	return p.OptimizeLevelSetContext(context.Background(), l, opts)
}

// OptimizeLevelSetContext is OptimizeLevelSet under a context: cancel
// it and the run stops at the next iteration boundary, returning a
// *CancelledError whose Checkpoint ResumeLevelSet continues from.
func (p *Pipeline) OptimizeLevelSetContext(ctx context.Context, l *Layout, opts LevelSetOptions) (*RunResult, error) {
	s, err := p.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.OptimizeLevelSetContext(ctx, l, opts)
}

// ResumeLevelSet continues a cancelled level-set run from its
// checkpoint. opts must be the options of the original run; the result
// then matches the uninterrupted run bit-for-bit.
func (p *Pipeline) ResumeLevelSet(ctx context.Context, l *Layout, opts LevelSetOptions, cp *Checkpoint) (*RunResult, error) {
	s, err := p.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.optimizeLevelSet(ctx, l, opts, cp)
}

// OptimizeLevelSet runs the paper's optimizer on this session. When the
// pipeline carries a trace sink and opts.Sink is nil, the run inherits
// the pipeline's sink under this session's trace id. With
// opts.MultiResFactor > 1 the run follows the coarse-to-fine schedule
// (core.RunMultiResolution) on truncated kernel banks sharing this
// pipeline's resources.
func (s *Session) OptimizeLevelSet(l *Layout, opts LevelSetOptions) (*RunResult, error) {
	return s.OptimizeLevelSetContext(context.Background(), l, opts)
}

// OptimizeLevelSetContext is OptimizeLevelSet under a context (see the
// Pipeline method of the same name).
func (s *Session) OptimizeLevelSetContext(ctx context.Context, l *Layout, opts LevelSetOptions) (*RunResult, error) {
	return s.optimizeLevelSet(ctx, l, opts, nil)
}

// optimizeLevelSet runs or resumes the level-set optimizer on this
// session.
func (s *Session) optimizeLevelSet(ctx context.Context, l *Layout, opts LevelSetOptions, cp *Checkpoint) (*RunResult, error) {
	target, err := s.p.targetShared(l)
	if err != nil {
		return nil, err
	}
	if opts.Sink == nil && s.p.sink != nil {
		opts.Sink = s.p.sink
		opts.TraceID = s.trace
	}
	if opts.Health == nil {
		opts.Health = s.p.health
	}
	start := time.Now()
	var res *LevelSetResult
	if cp != nil {
		res, err = core.Resume(ctx, s.sim, target, opts, cp)
	} else {
		res, err = core.RunMultiResolution(ctx, s.sim, target, opts)
	}
	if err != nil {
		var cerr *CancelledError
		if errors.As(err, &cerr) {
			s.p.captureAnomaly(BundleAnomaly{
				RunID: opts.TraceID, Reason: "cancelled", Checkpoint: cerr.Checkpoint,
			})
		}
		return nil, err
	}
	if res.Aborted {
		s.p.captureAnomaly(BundleAnomaly{
			RunID: opts.TraceID, Reason: res.AbortReason, Checkpoint: res.AbortCheckpoint,
		})
	}
	elapsed := time.Since(start)
	s.traceSpan("optimize.levelset", start)
	report, err := s.Evaluate(l, res.Mask, elapsed)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Method:   "level-set",
		Mask:     res.Mask,
		Report:   report,
		Elapsed:  elapsed,
		LevelSet: res,
	}, nil
}

// OptimizeTiled optimizes a full-chip layout larger than the pipeline's
// simulation window by tile decomposition with overlap-halo stitching
// (see internal/tiling and DESIGN.md §11): the chip is split into
// core+halo tiles the size of this pipeline's grid, tiles run
// concurrently on sessions sharing the pipeline's resource bank, and
// stitch passes blend ψ across seams and re-optimize disagreeing tiles
// until seams converge. The result's Mask/Psi are chip-resolution
// (chip extent ÷ pipeline pitch). The run inherits the pipeline's trace
// sink (events tagged with a fresh job id, per-tile runs as
// "<job>.t<n>") and health policy; a watchdog-aborted tile fails the
// whole run with a *TileAbortError. Safe to call concurrently.
func (p *Pipeline) OptimizeTiled(l *Layout, opts TileOptions) (*TiledResult, error) {
	return p.OptimizeTiledContext(context.Background(), l, opts)
}

// OptimizeTiledContext is OptimizeTiled under a context: cancel it and
// in-flight tiles stop at their next iteration boundary, queued tiles
// and pending stitch passes are skipped, and the error unwraps to the
// context's error. Tiled runs are not checkpointable — a re-run repeats
// the interrupted pass.
func (p *Pipeline) OptimizeTiledContext(ctx context.Context, l *Layout, opts TileOptions) (*TiledResult, error) {
	if opts.Sink == nil && p.sink != nil {
		opts.Sink = p.sink
		opts.TraceID = fmt.Sprintf("s%d", p.traceSeq.Add(1))
	}
	if opts.Health == nil {
		opts.Health = p.health
	}
	start := time.Now()
	res, err := tiling.Optimize(ctx, p.res, p.cfg, p.eng, l, opts)
	if err != nil {
		var terr *TileAbortError
		var cerr *CancelledError
		switch {
		case errors.As(err, &terr):
			p.captureAnomaly(BundleAnomaly{
				RunID:      terr.Trace,
				Reason:     terr.Reason,
				Tile:       terr.Tile + 1,
				Window:     fmt.Sprintf("%d,%d-%d,%d", terr.Window.X0, terr.Window.Y0, terr.Window.X1, terr.Window.Y1),
				Checkpoint: terr.Checkpoint,
			})
		case errors.As(err, &cerr):
			p.captureAnomaly(BundleAnomaly{
				RunID: opts.TraceID, Reason: "cancelled", Checkpoint: cerr.Checkpoint,
			})
		}
		return nil, err
	}
	if opts.Sink != nil {
		opts.Sink.Emit(obs.Event{
			Type: obs.EventSpan, Trace: opts.TraceID, Name: "optimize.tiled",
			Engine: p.eng.Name(), DurNS: time.Since(start).Nanoseconds(),
		})
	}
	return res, nil
}

// DefaultTileHaloNM returns the halo width a tiled run on this pipeline
// derives from its SOCS kernel energy support when TileOptions.HaloNM
// is zero.
func (p *Pipeline) DefaultTileHaloNM() int { return tiling.DefaultHaloNM(p.res, p.eng) }

// OptimizeBaseline runs one of the pixel-based comparison methods.
// Safe to call concurrently (each call leases its own session).
func (p *Pipeline) OptimizeBaseline(l *Layout, opts pixelilt.Options) (*RunResult, error) {
	return p.OptimizeBaselineContext(context.Background(), l, opts)
}

// OptimizeBaselineContext is OptimizeBaseline under a context: cancel
// it and the run stops at the next iteration boundary, returning a
// *CancelledError whose Checkpoint ResumeBaseline continues from.
func (p *Pipeline) OptimizeBaselineContext(ctx context.Context, l *Layout, opts pixelilt.Options) (*RunResult, error) {
	s, err := p.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.OptimizeBaselineContext(ctx, l, opts)
}

// ResumeBaseline continues a cancelled baseline run from its
// checkpoint. opts must be the options of the original run; the result
// then matches the uninterrupted run bit-for-bit.
func (p *Pipeline) ResumeBaseline(ctx context.Context, l *Layout, opts pixelilt.Options, cp *Checkpoint) (*RunResult, error) {
	s, err := p.Session()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.optimizeBaseline(ctx, l, opts, cp)
}

// OptimizeBaseline runs a pixel-based comparison method on this session.
// When the pipeline carries a trace sink and opts.Sink is nil, the run
// inherits the pipeline's sink under this session's trace id.
func (s *Session) OptimizeBaseline(l *Layout, opts pixelilt.Options) (*RunResult, error) {
	return s.OptimizeBaselineContext(context.Background(), l, opts)
}

// OptimizeBaselineContext is OptimizeBaseline under a context (see the
// Pipeline method of the same name).
func (s *Session) OptimizeBaselineContext(ctx context.Context, l *Layout, opts pixelilt.Options) (*RunResult, error) {
	return s.optimizeBaseline(ctx, l, opts, nil)
}

// optimizeBaseline runs or resumes a pixel baseline on this session.
func (s *Session) optimizeBaseline(ctx context.Context, l *Layout, opts pixelilt.Options, cp *Checkpoint) (*RunResult, error) {
	target, err := s.p.targetShared(l)
	if err != nil {
		return nil, err
	}
	if opts.Sink == nil && s.p.sink != nil {
		opts.Sink = s.p.sink
		opts.TraceID = s.trace
	}
	if opts.Health == nil {
		opts.Health = s.p.health
	}
	start := time.Now()
	var res *pixelilt.Result
	if cp != nil {
		res, err = pixelilt.Resume(ctx, s.sim, target, opts, cp)
	} else {
		res, err = pixelilt.Optimize(ctx, s.sim, target, opts)
	}
	if err != nil {
		var cerr *CancelledError
		if errors.As(err, &cerr) {
			s.p.captureAnomaly(BundleAnomaly{
				RunID: opts.TraceID, Reason: "cancelled", Checkpoint: cerr.Checkpoint,
			})
		}
		return nil, err
	}
	if res.Aborted {
		s.p.captureAnomaly(BundleAnomaly{
			RunID: opts.TraceID, Reason: res.AbortReason, Checkpoint: res.AbortCheckpoint,
		})
	}
	elapsed := time.Since(start)
	s.traceSpan("optimize."+opts.Variant.String(), start)
	report, err := s.Evaluate(l, res.Mask, elapsed)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Method:   opts.Variant.String(),
		Mask:     res.Mask,
		Report:   report,
		Elapsed:  elapsed,
		Baseline: res,
	}, nil
}

// Evaluate measures a mask against a layout with the contest checkers:
// EPE at the nominal corner, PV band across the outer/inner corners,
// shape violations, and the Eq. 18 score with the given runtime. Safe to
// call concurrently (each call leases its own session).
func (p *Pipeline) Evaluate(l *Layout, mask *Field, elapsed time.Duration) (Report, error) {
	s, err := p.Session()
	if err != nil {
		return Report{}, err
	}
	defer s.Close()
	return s.Evaluate(l, mask, elapsed)
}

// Evaluate measures a mask against a layout on this session.
func (s *Session) Evaluate(l *Layout, mask *Field, elapsed time.Duration) (Report, error) {
	n := s.sim.GridSize()
	if mask.W != n || mask.H != n {
		return Report{}, fmt.Errorf("lsopc: mask %dx%d does not match grid %d", mask.W, mask.H, n)
	}
	target, err := s.p.targetShared(l)
	if err != nil {
		return Report{}, err
	}
	evalStart := time.Now()
	defer s.traceSpan("evaluate", evalStart)
	s.sim.MaskSpectrumInto(s.spec, mask)
	s.sim.PrintedBinary(s.printed, s.spec, litho.Nominal)
	s.sim.PrintedBinary(s.outer, s.spec, litho.Outer)
	s.sim.PrintedBinary(s.inner, s.spec, litho.Inner)

	probes := metrics.Probes(l, s.p.metrics.EPESpacingNM)
	epe, _ := metrics.EPE(s.printed, probes, s.p.metrics)
	return Report{
		EPEViolations:   epe,
		PVBandNM2:       metrics.PVBand(s.outer, s.inner, s.sim.PixelNM()),
		ShapeViolations: metrics.ShapeViolations(s.printed, target),
		RuntimeSec:      elapsed.Seconds(),
	}, nil
}

// PrintedImages returns the binary printed images at the three corners
// (nominal, outer, inner) for visualisation. Safe to call concurrently
// (each call leases its own session).
func (p *Pipeline) PrintedImages(mask *Field) (nominal, outer, inner *Field) {
	s, err := p.Session()
	if err != nil {
		// Session construction can only fail on an invalid configuration,
		// which NewPipeline already validated.
		panic(fmt.Sprintf("lsopc: session: %v", err))
	}
	defer s.Close()
	return s.PrintedImages(mask)
}

// PrintedImages returns freshly allocated binary printed images at the
// three corners on this session.
func (s *Session) PrintedImages(mask *Field) (nominal, outer, inner *Field) {
	n := s.sim.GridSize()
	s.sim.MaskSpectrumInto(s.spec, mask)
	nominal = grid.NewField(n, n)
	outer = grid.NewField(n, n)
	inner = grid.NewField(n, n)
	s.sim.PrintedBinary(nominal, s.spec, litho.Nominal)
	s.sim.PrintedBinary(outer, s.spec, litho.Outer)
	s.sim.PrintedBinary(inner, s.spec, litho.Inner)
	return nominal, outer, inner
}

// Benchmarks returns the ten ICCAD-2013-style benchmark specs (B1…B10).
func Benchmarks() []BenchmarkSpec { return layouts.All() }

// Benchmark builds the named benchmark layout (B1…B10), panicking on an
// unknown id — use layouts.ByID via BenchmarkByID for error handling.
func Benchmark(id string) *Layout {
	s, err := layouts.ByID(id)
	if err != nil {
		panic(err)
	}
	return s.MustBuild()
}

// BenchmarkByID builds the named benchmark layout, returning an error
// for unknown ids.
func BenchmarkByID(id string) (*Layout, error) {
	s, err := layouts.ByID(id)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// NewField allocates a zero w×h image field.
func NewField(w, h int) *Field { return grid.NewField(w, h) }

// Process-window analysis re-exports.
type (
	// ProcessWindowResult is a focus×dose CD sweep outcome.
	ProcessWindowResult = procwin.Result
	// CutLine selects where the critical dimension is measured.
	CutLine = procwin.CutLine
)

// ProcessWindow sweeps the mask across the contest's focus/dose window
// (±25 nm, ±2 %) on a 6×5 matrix and measures the printed CD at the cut
// (Bossung-curve data). The per-focus kernel banks come from the shared
// memoized cache; the sweep does not disturb any session state.
func (p *Pipeline) ProcessWindow(mask *Field, cut CutLine) (*ProcessWindowResult, error) {
	an, err := procwin.New(procwin.DefaultConfig(p.cfg), p.eng)
	if err != nil {
		return nil, err
	}
	defer an.Release()
	return an.Sweep(mask, cut)
}
