// Package lsopc is the public API of the level-set ILT mask-optimization
// library, a from-scratch Go reproduction of "A GPU-enabled Level Set
// Method for Mask Optimization" (Yu, Chen, Ma, Yu — DATE 2021).
//
// The package ties the substrates together behind a Pipeline: pick a
// Preset (resolution/quality trade-off), optimize a layout with the
// paper's level-set method or one of the pixel-based baselines, and
// evaluate the result with the ICCAD 2013 contest metrics.
//
//	pipe, _ := lsopc.NewPipeline(lsopc.PresetFast, lsopc.GPUEngine())
//	layout := lsopc.Benchmark("B4")
//	run, _ := pipe.OptimizeLevelSet(layout, lsopc.DefaultLevelSetOptions())
//	fmt.Println(run.Report)
package lsopc

import (
	"fmt"
	"time"

	"lsopc/internal/core"
	"lsopc/internal/engine"
	"lsopc/internal/geom"
	"lsopc/internal/grid"
	"lsopc/internal/layouts"
	"lsopc/internal/litho"
	"lsopc/internal/metrics"
	"lsopc/internal/pixelilt"
	"lsopc/internal/procwin"
)

// Re-exported types so downstream code only imports this package.
type (
	// Layout is a rectilinear design (see the GLP format in README).
	Layout = geom.Layout
	// Field is a dense 2-D image (masks, resist images, ψ).
	Field = grid.Field
	// Report carries the contest metrics of one evaluated mask.
	Report = metrics.Report
	// LevelSetOptions configures the paper's optimizer (Algorithm 1).
	LevelSetOptions = core.Options
	// LevelSetResult is the optimizer outcome with its history trace.
	LevelSetResult = core.Result
	// BaselineVariant selects a pixel-based baseline algorithm.
	BaselineVariant = pixelilt.Variant
	// Engine is the execution engine (CPU serial / GPU-style parallel).
	Engine = engine.Engine
	// BenchmarkSpec describes one ICCAD-2013-style benchmark.
	BenchmarkSpec = layouts.Spec
)

// Baseline variants, re-exported.
const (
	MosaicFast  = pixelilt.MosaicFast
	MosaicExact = pixelilt.MosaicExact
	RobustOPC   = pixelilt.RobustOPC
	PVOPC       = pixelilt.PVOPC
)

// CPUEngine returns the serial reference engine (the paper's CPU runs).
func CPUEngine() *Engine { return engine.CPU() }

// GPUEngine returns the parallel engine standing in for the paper's
// CUDA acceleration (one worker per core; see DESIGN.md §4).
func GPUEngine() *Engine { return engine.GPU() }

// DefaultLevelSetOptions returns the paper's optimizer configuration.
func DefaultLevelSetOptions() LevelSetOptions { return core.DefaultOptions() }

// DefaultBaselineOptions returns the published schedule for a baseline.
func DefaultBaselineOptions(v BaselineVariant) pixelilt.Options {
	return pixelilt.DefaultOptions(v)
}

// Preset selects the simulation scale. All presets model the same
// 2048×2048 nm field; they differ in pixel pitch, kernel count and
// iteration budget (see EXPERIMENTS.md for the accuracy impact).
type Preset int

const (
	// PresetTest: 128 px @ 16 nm, 4 kernels — unit-test scale.
	PresetTest Preset = iota
	// PresetFast: 512 px @ 4 nm, 8 kernels — the default experiment
	// scale; a full benchmark optimizes in tens of seconds.
	PresetFast
	// PresetPaper: 2048 px @ 1 nm, 24 kernels — the contest's native
	// scale used by the paper (minutes per benchmark per method).
	PresetPaper
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case PresetTest:
		return "test"
	case PresetFast:
		return "fast"
	case PresetPaper:
		return "paper"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// ParsePreset converts a flag string to a Preset.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "test":
		return PresetTest, nil
	case "fast":
		return PresetFast, nil
	case "paper":
		return PresetPaper, nil
	}
	return 0, fmt.Errorf("lsopc: unknown preset %q (want test|fast|paper)", s)
}

// params returns grid size, pixel pitch (nm) and kernel count.
func (p Preset) params() (gridSize int, pixelNM float64, kernels int, err error) {
	switch p {
	case PresetTest:
		return 128, 16, 4, nil
	case PresetFast:
		return 512, 4, 8, nil
	case PresetPaper:
		return 2048, 1, 24, nil
	default:
		return 0, 0, 0, fmt.Errorf("lsopc: invalid preset %d", int(p))
	}
}

// Pipeline bundles a configured simulator with the matching metric
// checkers. It owns simulator scratch and is not safe for concurrent
// use; create one per goroutine.
type Pipeline struct {
	preset  Preset
	eng     *engine.Engine
	sim     *litho.Simulator
	metrics metrics.Config
}

// NewPipeline builds a pipeline at the given preset on the given engine
// (nil defaults to the serial CPU engine).
func NewPipeline(p Preset, eng *Engine) (*Pipeline, error) {
	gridSize, pixelNM, kernels, err := p.params()
	if err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.CPU()
	}
	cfg := litho.DefaultConfig(gridSize, pixelNM)
	cfg.Optics.Kernels = kernels
	sim, err := litho.NewSimulator(cfg, eng)
	if err != nil {
		return nil, err
	}
	return &Pipeline{preset: p, eng: eng, sim: sim, metrics: metrics.DefaultConfig(pixelNM)}, nil
}

// Preset returns the pipeline's preset.
func (p *Pipeline) Preset() Preset { return p.preset }

// Engine returns the pipeline's execution engine.
func (p *Pipeline) Engine() *Engine { return p.eng }

// Simulator exposes the underlying forward model for advanced use.
func (p *Pipeline) Simulator() *litho.Simulator { return p.sim }

// GridSize returns the simulation grid edge in pixels.
func (p *Pipeline) GridSize() int { return p.sim.GridSize() }

// PixelNM returns the simulation pixel pitch in nm.
func (p *Pipeline) PixelNM() float64 { return p.sim.PixelNM() }

// Target rasterises a layout onto the pipeline's simulation grid.
func (p *Pipeline) Target(l *Layout) (*Field, error) {
	pitch := int(p.sim.PixelNM())
	if float64(pitch) != p.sim.PixelNM() {
		return nil, fmt.Errorf("lsopc: non-integer pixel pitch %g", p.sim.PixelNM())
	}
	f, err := geom.Rasterize(l, pitch)
	if err != nil {
		return nil, err
	}
	if f.W != p.sim.GridSize() {
		return nil, fmt.Errorf("lsopc: layout canvas %d nm does not match the %d-px grid at %d nm/px",
			l.W, p.sim.GridSize(), pitch)
	}
	return f, nil
}

// RunResult is a complete optimize-and-evaluate outcome.
type RunResult struct {
	Method  string
	Mask    *Field
	Report  Report
	Elapsed time.Duration
	// LevelSet holds the optimizer trace when the level-set method ran
	// (nil for baselines).
	LevelSet *LevelSetResult
	// Baseline holds the baseline trace when a baseline ran.
	Baseline *pixelilt.Result
}

// OptimizeLevelSet runs the paper's optimizer on the layout and
// evaluates the resulting mask.
func (p *Pipeline) OptimizeLevelSet(l *Layout, opts LevelSetOptions) (*RunResult, error) {
	target, err := p.Target(l)
	if err != nil {
		return nil, err
	}
	opt, err := core.New(p.sim, target, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := opt.Run()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	report, err := p.Evaluate(l, res.Mask, elapsed)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Method:   "level-set",
		Mask:     res.Mask,
		Report:   report,
		Elapsed:  elapsed,
		LevelSet: res,
	}, nil
}

// OptimizeBaseline runs one of the pixel-based comparison methods.
func (p *Pipeline) OptimizeBaseline(l *Layout, opts pixelilt.Options) (*RunResult, error) {
	target, err := p.Target(l)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := pixelilt.Optimize(p.sim, target, opts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	report, err := p.Evaluate(l, res.Mask, elapsed)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Method:   opts.Variant.String(),
		Mask:     res.Mask,
		Report:   report,
		Elapsed:  elapsed,
		Baseline: res,
	}, nil
}

// Evaluate measures a mask against a layout with the contest checkers:
// EPE at the nominal corner, PV band across the outer/inner corners,
// shape violations, and the Eq. 18 score with the given runtime.
func (p *Pipeline) Evaluate(l *Layout, mask *Field, elapsed time.Duration) (Report, error) {
	n := p.sim.GridSize()
	if mask.W != n || mask.H != n {
		return Report{}, fmt.Errorf("lsopc: mask %dx%d does not match grid %d", mask.W, mask.H, n)
	}
	target, err := p.Target(l)
	if err != nil {
		return Report{}, err
	}
	spec := p.sim.MaskSpectrum(mask)

	printed := grid.NewField(n, n)
	outer := grid.NewField(n, n)
	inner := grid.NewField(n, n)
	p.sim.PrintedBinary(printed, spec, litho.Nominal)
	p.sim.PrintedBinary(outer, spec, litho.Outer)
	p.sim.PrintedBinary(inner, spec, litho.Inner)

	probes := metrics.Probes(l, p.metrics.EPESpacingNM)
	epe, _ := metrics.EPE(printed, probes, p.metrics)
	return Report{
		EPEViolations:   epe,
		PVBandNM2:       metrics.PVBand(outer, inner, p.sim.PixelNM()),
		ShapeViolations: metrics.ShapeViolations(printed, target),
		RuntimeSec:      elapsed.Seconds(),
	}, nil
}

// PrintedImages returns the binary printed images at the three corners
// (nominal, outer, inner) for visualisation.
func (p *Pipeline) PrintedImages(mask *Field) (nominal, outer, inner *Field) {
	n := p.sim.GridSize()
	spec := p.sim.MaskSpectrum(mask)
	nominal = grid.NewField(n, n)
	outer = grid.NewField(n, n)
	inner = grid.NewField(n, n)
	p.sim.PrintedBinary(nominal, spec, litho.Nominal)
	p.sim.PrintedBinary(outer, spec, litho.Outer)
	p.sim.PrintedBinary(inner, spec, litho.Inner)
	return nominal, outer, inner
}

// Benchmarks returns the ten ICCAD-2013-style benchmark specs (B1…B10).
func Benchmarks() []BenchmarkSpec { return layouts.All() }

// Benchmark builds the named benchmark layout (B1…B10), panicking on an
// unknown id — use layouts.ByID via BenchmarkByID for error handling.
func Benchmark(id string) *Layout {
	s, err := layouts.ByID(id)
	if err != nil {
		panic(err)
	}
	return s.MustBuild()
}

// BenchmarkByID builds the named benchmark layout, returning an error
// for unknown ids.
func BenchmarkByID(id string) (*Layout, error) {
	s, err := layouts.ByID(id)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// NewField allocates a zero w×h image field.
func NewField(w, h int) *Field { return grid.NewField(w, h) }

// Process-window analysis re-exports.
type (
	// ProcessWindowResult is a focus×dose CD sweep outcome.
	ProcessWindowResult = procwin.Result
	// CutLine selects where the critical dimension is measured.
	CutLine = procwin.CutLine
)

// ProcessWindow sweeps the mask across the contest's focus/dose window
// (±25 nm, ±2 %) on a 6×5 matrix and measures the printed CD at the cut
// (Bossung-curve data). The sweep builds its own kernel banks and does
// not disturb the pipeline's simulator state.
func (p *Pipeline) ProcessWindow(mask *Field, cut CutLine) (*ProcessWindowResult, error) {
	an, err := procwin.New(procwin.DefaultConfig(p.sim.Config()), p.eng)
	if err != nil {
		return nil, err
	}
	return an.Sweep(mask, cut)
}
