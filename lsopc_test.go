package lsopc

import (
	"testing"
	"time"
)

func TestPresetParsing(t *testing.T) {
	for _, tc := range []struct {
		s string
		p Preset
	}{{"test", PresetTest}, {"fast", PresetFast}, {"paper", PresetPaper}} {
		got, err := ParsePreset(tc.s)
		if err != nil || got != tc.p {
			t.Errorf("ParsePreset(%q) = %v, %v", tc.s, got, err)
		}
		if got.String() != tc.s {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParsePreset("huge"); err == nil {
		t.Error("unknown preset accepted")
	}
	if Preset(9).String() == "" {
		t.Error("unknown preset must still format")
	}
}

func TestNewPipelineTestPreset(t *testing.T) {
	p, err := NewPipeline(PresetTest, CPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	if p.GridSize() != 128 || p.PixelNM() != 16 {
		t.Fatalf("test preset dims: %d px @ %g nm", p.GridSize(), p.PixelNM())
	}
	if p.Preset() != PresetTest || p.Engine() == nil || p.Simulator() == nil {
		t.Fatal("pipeline accessors broken")
	}
}

func TestNewPipelineInvalidPreset(t *testing.T) {
	if _, err := NewPipeline(Preset(77), nil); err == nil {
		t.Fatal("invalid preset accepted")
	}
}

func TestBenchmarkAccess(t *testing.T) {
	specs := Benchmarks()
	if len(specs) != 10 {
		t.Fatalf("benchmark count %d", len(specs))
	}
	l := Benchmark("B10")
	if l.Area() != 102400 {
		t.Fatalf("B10 area %d", l.Area())
	}
	if _, err := BenchmarkByID("B0"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Benchmark with unknown id must panic")
		}
	}()
	Benchmark("nope")
}

func TestTargetMatchesArea(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := Benchmark("B4")
	target, err := p.Target(l)
	if err != nil {
		t.Fatal(err)
	}
	if target.W != 128 || target.H != 128 {
		t.Fatalf("target shape %dx%d", target.W, target.H)
	}
	// Box-rasterised area ≈ geometric area within one pixel row of the
	// perimeter (16 nm pixels are coarse).
	gotNM2 := target.Sum() * 16 * 16
	if gotNM2 < 0.8*float64(l.Area()) || gotNM2 > 1.2*float64(l.Area()) {
		t.Fatalf("raster area %g vs layout %d", gotNM2, l.Area())
	}
}

// TestEndToEndLevelSetRun is the headline integration test: optimize a
// full benchmark at test scale and verify the optimized mask beats the
// unoptimized design on the contest metrics.
func TestEndToEndLevelSetRun(t *testing.T) {
	p, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	l := Benchmark("B4")
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 12

	run, err := p.OptimizeLevelSet(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Method != "level-set" || run.LevelSet == nil || run.Baseline != nil {
		t.Fatal("run metadata wrong")
	}
	if run.Elapsed <= 0 {
		t.Fatal("elapsed time missing")
	}

	// Evaluate the *unoptimized* mask (= target) for comparison.
	target, err := p.Target(l)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := p.Evaluate(l, target, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	optCost := 4*run.Report.PVBandNM2 + 5000*float64(run.Report.EPEViolations)
	rawCost := 4*baseline.PVBandNM2 + 5000*float64(baseline.EPEViolations)
	if optCost >= rawCost {
		t.Fatalf("optimization did not improve metrics: opt %g vs raw %g (opt %+v, raw %+v)",
			optCost, rawCost, run.Report, baseline)
	}
	if run.Report.ShapeViolations > baseline.ShapeViolations {
		t.Fatalf("optimization broke shapes: %d vs %d", run.Report.ShapeViolations, baseline.ShapeViolations)
	}
}

func TestEndToEndBaselineRun(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := Benchmark("B10")
	opts := DefaultBaselineOptions(MosaicFast)
	opts.MaxIter = 9
	run, err := p.OptimizeBaseline(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Method != "MOSAIC_fast" || run.Baseline == nil || run.LevelSet != nil {
		t.Fatal("baseline run metadata wrong")
	}
	if run.Report.ShapeViolations != 0 {
		t.Fatalf("B10 should print cleanly, got %d shape violations", run.Report.ShapeViolations)
	}
}

func TestEvaluateRejectsWrongMaskShape(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Field{W: 4, H: 4, Data: make([]float64, 16)}
	if _, err := p.Evaluate(Benchmark("B4"), bad, time.Second); err == nil {
		t.Fatal("wrong mask shape accepted")
	}
}

func TestPrintedImagesOrdering(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	target, err := p.Target(Benchmark("B10"))
	if err != nil {
		t.Fatal(err)
	}
	nom, outer, inner := p.PrintedImages(target)
	// Dose ordering: the +2% dose (outer) print is a superset of the
	// nominal print at identical focus; the defocused −2% dose (inner)
	// print is smaller than nominal for a well-behaved pattern.
	if outer.Sum() < nom.Sum() {
		t.Fatalf("outer print %g smaller than nominal %g", outer.Sum(), nom.Sum())
	}
	if inner.Sum() > nom.Sum() {
		t.Fatalf("inner print %g larger than nominal %g", inner.Sum(), nom.Sum())
	}
	for i := range nom.Data {
		if nom.Data[i] > 0.5 && outer.Data[i] < 0.5 {
			t.Fatal("nominal print must be contained in outer print")
		}
	}
}

func TestProcessWindowFacade(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	target, err := p.Target(Benchmark("B10"))
	if err != nil {
		t.Fatal(err)
	}
	// B10 is a 320 nm square centred at (1024,1024) nm → pixel (64,64).
	res, err := p.ProcessWindow(target, CutLine{X: 64, Y: 64, Horizontal: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetCD <= 0 {
		t.Fatal("no nominal CD measured")
	}
	// The contest window is 6 focus × 5 dose points.
	if len(res.Points) != 30 {
		t.Fatalf("matrix points %d, want 30", len(res.Points))
	}
	// A 320 nm feature is robust: window yield at ±10% should be high.
	if y := res.WindowYield(res.TargetCD, 0.10); y < 0.8 {
		t.Fatalf("B10 window yield %g", y)
	}
}

func TestRunReportRuntimeMatchesElapsed(t *testing.T) {
	p, err := NewPipeline(PresetTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBaselineOptions(PVOPC)
	opts.MaxIter = 4
	run, err := p.OptimizeBaseline(Benchmark("B10"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Report.RuntimeSec != run.Elapsed.Seconds() {
		t.Fatalf("report runtime %g != elapsed %g", run.Report.RuntimeSec, run.Elapsed.Seconds())
	}
}
