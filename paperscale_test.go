package lsopc

import (
	"testing"

	"lsopc/internal/litho"
)

// TestPaperPresetConstructionAndForward verifies contest-scale viability:
// the 2048-px, 24-kernel pipeline must construct within a modest memory
// envelope (sparse kernel boxes) and run one exact forward simulation.
func TestPaperPresetConstructionAndForward(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke skipped in -short mode")
	}
	pipe, err := NewPipeline(PresetPaper, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.GridSize() != 2048 || pipe.PixelNM() != 1 {
		t.Fatalf("paper preset dims: %d px @ %g nm", pipe.GridSize(), pipe.PixelNM())
	}
	target, err := pipe.Target(Benchmark("B10"))
	if err != nil {
		t.Fatal(err)
	}
	// At 1 nm/px the raster area must match Table I exactly.
	if int(target.Sum()) != 102400 {
		t.Fatalf("B10 raster area %d at contest scale", int(target.Sum()))
	}
	sim := pipe.Simulator()
	spec := sim.MaskSpectrum(target)
	aerial := NewField(2048, 2048)
	sim.Aerial(aerial, spec, litho.Nominal)
	if aerial.At(1024, 1024) < 0.225 {
		t.Fatalf("B10 centre intensity %g below threshold at contest scale", aerial.At(1024, 1024))
	}
	if aerial.At(100, 100) > 0.05 {
		t.Fatalf("background intensity %g too high", aerial.At(100, 100))
	}
}
