package lsopc

import (
	"sync"
	"testing"
)

// TestMixedPrecisionSessionsConcurrent is the mixed-precision
// concurrency gate: float32 and float64 jobs share ONE pipeline at the
// same time, and each must be bit-identical to its own serial baseline.
// The free list hands sessions back by precision, so a recycled float32
// session must never serve a float64 lease (or vice versa). Run under
// `go test -race .` (make race) this also covers the float32 scratch
// paths for data races.
func TestMixedPrecisionSessionsConcurrent(t *testing.T) {
	p, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 3

	type job struct {
		id   string
		prec Precision
	}
	jobs := []job{
		{"B1", Float64}, {"B1", Float32},
		{"B4", Float64}, {"B4", Float32},
		{"B7", Float64}, {"B7", Float32},
		{"B10", Float64}, {"B10", Float32},
	}

	// Serial baselines, one per (case, precision).
	serial := make(map[job]*RunResult, len(jobs))
	for _, j := range jobs {
		s, err := p.SessionPrecision(j.prec)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.OptimizeLevelSet(Benchmark(j.id), opts)
		s.Close()
		if err != nil {
			t.Fatalf("%s/%v serial: %v", j.id, j.prec, err)
		}
		serial[j] = run
	}

	// All jobs at once, mixing precisions through the same handle.
	got := make([]*RunResult, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			s, err := p.SessionPrecision(j.prec)
			if err != nil {
				t.Errorf("%s/%v lease: %v", j.id, j.prec, err)
				return
			}
			defer s.Close()
			run, err := s.OptimizeLevelSet(Benchmark(j.id), opts)
			if err != nil {
				t.Errorf("%s/%v concurrent: %v", j.id, j.prec, err)
				return
			}
			got[i] = run
		}(i, j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, j := range jobs {
		want := serial[j]
		masksEqual(t, j.id+"/"+j.prec.String(), want.Mask, got[i].Mask)
		if !reportsMatch(want.Report, got[i].Report) {
			t.Fatalf("%s/%v: reports differ: %+v vs %+v", j.id, j.prec, want.Report, got[i].Report)
		}
	}
}

// TestSessionPrecisionFreeList pins the precision-aware free list: a
// closed session is only recycled for a matching-precision lease.
func TestSessionPrecisionFreeList(t *testing.T) {
	p, err := NewPipeline(PresetTest, CPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	s32, err := p.SessionPrecision(Float32)
	if err != nil {
		t.Fatal(err)
	}
	s32.Close()

	s64, err := p.SessionPrecision(Float64)
	if err != nil {
		t.Fatal(err)
	}
	if s64 == s32 {
		t.Fatal("float64 lease was served a recycled float32 session")
	}
	s64.Close()

	again, err := p.SessionPrecision(Float32)
	if err != nil {
		t.Fatal(err)
	}
	if again != s32 {
		t.Fatal("idle float32 session was not reused for a float32 lease")
	}
	again.Close()
}

// TestWithPrecisionDefault checks the pipeline-wide default: a pipeline
// built WithPrecision(Float32) hands out float32 sessions from the
// plain Session call, and produces printable results.
func TestWithPrecisionDefault(t *testing.T) {
	p, err := NewPipeline(PresetTest, CPUEngine(), WithPrecision(Float32))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	s, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.sim.Precision(); got != Float32 {
		t.Fatalf("default session precision = %v, want float32", got)
	}

	opts := DefaultLevelSetOptions()
	opts.MaxIter = 2
	run, err := s.OptimizeLevelSet(Benchmark("B2"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Mask == nil || run.Mask.Sum() == 0 {
		t.Fatal("float32 pipeline produced an empty mask")
	}
}
