package lsopc

import (
	"lsopc/internal/metrics"
	"lsopc/internal/mrc"
	"lsopc/internal/ruleopc"
	"lsopc/internal/sraf"
)

// Resolution-enhancement and manufacturability re-exports.
type (
	// MaskRules is a mask-shop rule set for MRC.
	MaskRules = mrc.Rules
	// MaskRuleViolation is one MRC failure with location and value.
	MaskRuleViolation = mrc.Violation
	// RuleOPCOptions configures rule-based OPC (edge bias + serifs).
	RuleOPCOptions = ruleopc.Options
	// SRAFOptions configures sub-resolution assist feature placement.
	SRAFOptions = sraf.Options
	// MaskComplexity carries the manufacturability counters of a mask.
	MaskComplexity = metrics.MaskComplexity
)

// DefaultMaskRules returns a contest-era rule set at the given pixel
// pitch (40 nm width/space, 3600 nm² area/hole).
func DefaultMaskRules(pixelNM float64) MaskRules { return mrc.DefaultRules(pixelNM) }

// CheckMaskRules runs mask rule checking on a binary mask.
func CheckMaskRules(mask *Field, rules MaskRules) ([]MaskRuleViolation, error) {
	return mrc.Check(mask, rules)
}

// DefaultRuleOPC returns the default rule-based OPC recipe at the given
// pixel pitch (10 nm bias, 30 nm corner serifs).
func DefaultRuleOPC(pixelNM float64) RuleOPCOptions { return ruleopc.DefaultOptions(pixelNM) }

// RuleOPC applies rule-based OPC (Euclidean edge bias + convex-corner
// serifs) to a target raster, returning the corrected mask.
func RuleOPC(target *Field, opts RuleOPCOptions) (*Field, error) {
	return ruleopc.Apply(target, opts)
}

// DefaultSRAF returns the default assist-feature recipe at the given
// pixel pitch (60 nm gap, 32 nm bars).
func DefaultSRAF(pixelNM float64) SRAFOptions { return sraf.DefaultOptions(pixelNM) }

// GenerateSRAF returns the SRAF-only mask for a target raster.
func GenerateSRAF(target *Field, opts SRAFOptions) (*Field, error) {
	return sraf.Generate(target, opts)
}

// AddSRAF returns target ∪ SRAF — e.g. as a level-set warm start
// (LevelSetOptions.InitialMask).
func AddSRAF(target *Field, opts SRAFOptions) (*Field, error) {
	return sraf.Add(target, opts)
}

// Complexity measures the manufacturability counters (islands, stains,
// holes, perimeter, jogs) of a binary mask.
func Complexity(mask *Field) MaskComplexity { return metrics.Complexity(mask) }

// CleanupMask removes islands and fills enclosed holes smaller than
// minPx pixels, in place; returns (#removed islands, #filled holes).
func CleanupMask(mask *Field, minPx int) (int, int) {
	return metrics.RemoveTinyFeatures(mask, minPx, minPx)
}
