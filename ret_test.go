package lsopc

import (
	"testing"
)

func squareField(n, x0, y0, x1, y1 int) *Field {
	f := NewField(n, n)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, 1)
		}
	}
	return f
}

func TestRuleOPCFacade(t *testing.T) {
	target := squareField(128, 40, 40, 80, 80)
	out, err := RuleOPC(target, DefaultRuleOPC(16))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() <= target.Sum() {
		t.Fatal("rule OPC must add material (bias + serifs)")
	}
}

func TestSRAFFacade(t *testing.T) {
	target := squareField(128, 48, 48, 80, 80)
	bars, err := GenerateSRAF(target, DefaultSRAF(16))
	if err != nil {
		t.Fatal(err)
	}
	assisted, err := AddSRAF(target, DefaultSRAF(16))
	if err != nil {
		t.Fatal(err)
	}
	if assisted.Sum() != target.Sum()+bars.Sum() {
		t.Fatal("AddSRAF must be the disjoint union of target and bars")
	}
}

func TestMaskRulesFacade(t *testing.T) {
	// A 2-px sliver at 16 nm/px = 32 nm: violates the 40 nm width rule.
	sliver := squareField(64, 30, 10, 32, 54)
	viols, err := CheckMaskRules(sliver, DefaultMaskRules(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) == 0 {
		t.Fatal("sliver passed MRC")
	}
}

func TestComplexityAndCleanupFacade(t *testing.T) {
	m := squareField(64, 10, 10, 40, 40)
	m.Set(60, 60, 1) // stain
	c := Complexity(m)
	if c.Islands != 2 || c.TinyIslands != 1 {
		t.Fatalf("complexity %+v", c)
	}
	removed, filled := CleanupMask(m, 4)
	if removed != 1 || filled != 0 {
		t.Fatalf("cleanup removed %d, filled %d", removed, filled)
	}
	if Complexity(m).Islands != 1 {
		t.Fatal("stain survived cleanup")
	}
}

func TestSRAFWarmStartEndToEnd(t *testing.T) {
	// Full API flow: SRAF-seeded level-set optimization must run and
	// produce a valid mask.
	pipe, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	layout := Benchmark("B4")
	target, err := pipe.Target(layout)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := AddSRAF(target, DefaultSRAF(pipe.PixelNM()))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 6
	opts.InitialMask = seed
	run, err := pipe.OptimizeLevelSet(layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Mask.Sum() == 0 {
		t.Fatal("empty mask from SRAF-seeded run")
	}
	if run.Report.ShapeViolations > 2 {
		t.Fatalf("SRAF-seeded run broke shapes: %+v", run.Report)
	}
}
