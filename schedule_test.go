package lsopc

import "testing"

// TestMultiResMatchesBaselineQuality is the coarse-to-fine acceptance
// gate: on every ICCAD benchmark the factor-2 schedule (same total
// iteration budget, a short coarse warm start) must converge into the
// same quality class as the full-resolution run — the coarse phase buys
// wall-clock, not a different optimum. EPE/PVB at the 128-px test
// preset are noisy discrete counts, so each case gets a loose bound and
// the benchmark-suite aggregate a tight one (per-case jitter cancels).
func TestMultiResMatchesBaselineQuality(t *testing.T) {
	p, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	base := DefaultLevelSetOptions()
	base.MaxIter = 30
	multi := base
	multi.MultiResFactor = 2
	multi.MultiResIters = 4 // short coarse warm start, 26 fine iterations

	var sumEPEBase, sumEPEMulti int
	var sumPVBBase, sumPVBMulti float64
	for _, spec := range Benchmarks() {
		l := Benchmark(spec.ID)
		want, err := p.OptimizeLevelSet(l, base)
		if err != nil {
			t.Fatalf("%s baseline: %v", spec.ID, err)
		}
		got, err := p.OptimizeLevelSet(l, multi)
		if err != nil {
			t.Fatalf("%s multires: %v", spec.ID, err)
		}
		t.Logf("%s: EPE %d -> %d  PVB %.0f -> %.0f",
			spec.ID,
			want.Report.EPEViolations, got.Report.EPEViolations,
			want.Report.PVBandNM2, got.Report.PVBandNM2)

		if got.Mask.W != want.Mask.W || got.Mask.H != want.Mask.H {
			t.Fatalf("%s: multires mask %dx%d, want %dx%d",
				spec.ID, got.Mask.W, got.Mask.H, want.Mask.W, want.Mask.H)
		}
		if got.LevelSet.Iterations != want.LevelSet.Iterations {
			t.Errorf("%s: iteration budgets differ: %d vs %d",
				spec.ID, got.LevelSet.Iterations, want.LevelSet.Iterations)
		}
		if g, w := got.Report.EPEViolations, want.Report.EPEViolations; g > w+10 {
			t.Errorf("%s: EPE violations %d vs baseline %d", spec.ID, g, w)
		}
		if g, w := got.Report.PVBandNM2, want.Report.PVBandNM2; g > 2*w+2600 {
			t.Errorf("%s: PV band %.0f nm² vs baseline %.0f nm²", spec.ID, g, w)
		}
		sumEPEBase += want.Report.EPEViolations
		sumEPEMulti += got.Report.EPEViolations
		sumPVBBase += want.Report.PVBandNM2
		sumPVBMulti += got.Report.PVBandNM2
	}

	t.Logf("suite: EPE %d -> %d  PVB %.0f -> %.0f",
		sumEPEBase, sumEPEMulti, sumPVBBase, sumPVBMulti)
	if float64(sumEPEMulti) > 1.15*float64(sumEPEBase)+5 {
		t.Errorf("suite EPE violations %d vs baseline %d (>15%% worse)", sumEPEMulti, sumEPEBase)
	}
	if sumPVBMulti > 1.35*sumPVBBase {
		t.Errorf("suite PV band %.0f nm² vs baseline %.0f nm² (>35%% worse)", sumPVBMulti, sumPVBBase)
	}
}
