package lsopc

import (
	"sync"
	"testing"
	"time"

	"lsopc/internal/engine"
)

// TestTiledMatchesMonolithic is the seam-quality acceptance gate: a
// 2048 nm benchmark clip small enough to optimize monolithically
// (PresetTest, one 128-px window) is also optimized tiled — a 64-px
// (1024 nm) tile window with a 256 nm halo gives a 4×4 decomposition —
// and the stitched chip mask must land in the same EPE/PVB quality
// class when evaluated with the monolithic pipeline's contest checkers.
// EPE/PVB at this scale are noisy discrete counts, so the bounds mirror
// the per-case multires gates (schedule_test.go).
func TestTiledMatchesMonolithic(t *testing.T) {
	mono, err := NewPipeline(PresetTest, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Release()
	tiledPipe, err := NewCustomPipeline(64, 16, 4, GPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer tiledPipe.Release()

	layout := Benchmark("B1")
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 20

	want, err := mono.OptimizeLevelSet(layout, opts)
	if err != nil {
		t.Fatal(err)
	}

	tstart := time.Now()
	tiled, err := tiledPipe.OptimizeTiled(layout, TileOptions{
		HaloNM:       256,
		Core:         opts,
		StitchPasses: 2,
		StitchIters:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tiled.Grid.Tiles); got != 16 {
		t.Fatalf("decomposition has %d tiles, want 16 (4x4)", got)
	}
	if tiled.Mask.W != mono.GridSize() || tiled.Mask.H != mono.GridSize() {
		t.Fatalf("tiled chip mask %dx%d, want %d", tiled.Mask.W, tiled.Mask.H, mono.GridSize())
	}
	got, err := mono.Evaluate(layout, tiled.Mask, time.Since(tstart))
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("mono:  EPE %d  PVB %.0f", want.Report.EPEViolations, want.Report.PVBandNM2)
	t.Logf("tiled: EPE %d  PVB %.0f  (seam %.4f after %d stitch passes, converged=%v)",
		got.EPEViolations, got.PVBandNM2, tiled.Seam, tiled.Passes, tiled.SeamConverged)
	if g, w := got.EPEViolations, want.Report.EPEViolations; g > w+10 {
		t.Errorf("tiled EPE violations %d vs monolithic %d", g, w)
	}
	if g, w := got.PVBandNM2, want.Report.PVBandNM2; g > 2*w+2600 {
		t.Errorf("tiled PV band %.0f vs monolithic %.0f", g, w)
	}
}

// TestTiledConcurrentSessionsStress is the shared-bank safety gate for
// tiled fan-out (run under -race by make race): several tiled jobs run
// concurrently on one pipeline — each spawning tile sessions that lease
// and release pooled scratch — while other goroutines hammer the shared
// target cache, lease/close mixed-precision sessions, and Release() the
// pipeline mid-flight.
func TestTiledConcurrentSessionsStress(t *testing.T) {
	eng := engine.New("stress", 4)
	sink := NewCollectorTraceSink()
	p, err := NewCustomPipeline(64, 16, 4, eng, WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	chipLayout := stressChip()

	opts := DefaultLevelSetOptions()
	opts.MaxIter = 2
	tileOpts := TileOptions{
		HaloNM:       256,
		Workers:      4,
		Core:         opts,
		StitchPasses: 1,
		StitchIters:  1,
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Tiled jobs: dozens of tile sessions constructed/released.
	for j := 0; j < 3; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.OptimizeTiled(chipLayout, tileOpts); err != nil {
				errs <- err
			}
		}()
	}
	// Session churn at both precisions against the same bank and pool.
	for j := 0; j < 8; j++ {
		prec := Float64
		if j%2 == 1 {
			prec = Float32
		}
		wg.Add(1)
		go func(prec Precision) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s, err := p.SessionPrecision(prec)
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Simulator().Resources().Target(chipLayoutKey(i), buildTinyTarget); err != nil {
					errs <- err
				}
				s.Close()
			}
		}(prec)
	}
	// Concurrent pipeline releases (drain free list + flush sink).
	for j := 0; j < 3; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Release()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// stressChip returns a small 1×3-tile chip layout.
func stressChip() *Layout {
	return &Layout{
		Name: "stress-chip", W: 1024, H: 1536,
		Rects: []Rect{
			{X0: 256, Y0: 200, X1: 768, Y1: 328},
			{X0: 256, Y0: 960, X1: 768, Y1: 1088},
			{X0: 100, Y0: 1200, X1: 228, Y1: 1400},
		},
	}
}

type stressKey struct{ i int }

func chipLayoutKey(i int) any { return stressKey{i % 4} }

func buildTinyTarget() (*Field, error) { return NewField(64, 64), nil }
