package lsopc

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"lsopc/internal/core"
	"lsopc/internal/litho"
	"lsopc/internal/obs"
)

// TestConcurrentSessionTraceIntegrity is the observability acceptance
// gate for the session runtime: several sessions optimizing concurrently
// through ONE shared JSONL sink must produce a stream where every line
// is valid JSON, the sink-assigned sequence numbers are strictly
// increasing (no lost or interleaved writes), every session's iteration
// events arrive in order 0..n-1 under its own trace id, and — because
// results are scheduling-independent — the per-iteration cost sequences
// are identical across sessions running the same layout. Run under
// `go test -race .` this is also the data-race gate for the trace path.
func TestConcurrentSessionTraceIntegrity(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLTraceSink(&buf)
	// The runtime sink carries the session-less pool/plan-cache events;
	// pointing it at the same JSONL stream mirrors the CLI's -tracefile
	// wiring and exercises the shared-mutex serialization under -race.
	SetRuntimeTrace(sink)
	defer SetRuntimeTrace(nil)
	p, err := NewPipeline(PresetTest, GPUEngine(), WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	const jobs = 4
	sessions, err := p.Sessions(jobs)
	if err != nil {
		t.Fatal(err)
	}
	layout := Benchmark("B1")
	opts := DefaultLevelSetOptions()
	opts.MaxIter = 5
	opts.Tolerance = 0 // fixed iteration count so all traces are comparable

	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sessions[i].OptimizeLevelSet(layout, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for _, s := range sessions {
		s.Close()
	}
	if err := FlushTrace(sink); err != nil {
		t.Fatal(err)
	}

	var (
		lastSeq int64
		iters   = map[string][]TraceEvent{}
		kinds   = map[string]int{}
	)
	for n, line := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		var e TraceEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", n+1, err, line)
		}
		if e.Type == "" {
			t.Fatalf("line %d: event without type: %s", n+1, line)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("line %d: seq %d not strictly increasing after %d", n+1, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		kinds[e.Type]++
		if e.Type == EventIteration {
			iters[e.Trace] = append(iters[e.Trace], e)
		}
	}
	for _, kind := range []string{EventIteration, EventCorner, EventSpan, EventPool} {
		if kinds[kind] == 0 {
			t.Errorf("no %q events in trace (got %v)", kind, kinds)
		}
	}
	if len(iters) != jobs {
		t.Fatalf("expected iteration events under %d trace ids, got %d: %v", jobs, len(iters), kinds)
	}
	var ref []TraceEvent
	for trace, seq := range iters {
		if len(seq) != opts.MaxIter {
			t.Fatalf("trace %s: %d iteration events, want %d", trace, len(seq), opts.MaxIter)
		}
		for i, e := range seq {
			if e.Iter != i {
				t.Fatalf("trace %s: iteration %d arrived out of order (Iter=%d)", trace, i, e.Iter)
			}
		}
		if ref == nil {
			ref = seq
			continue
		}
		// Same layout, same options, shared bank: sessions must be
		// bit-identical regardless of scheduling.
		for i := range seq {
			if seq[i].Cost != ref[i].Cost || seq[i].GradNorm != ref[i].GradNorm {
				t.Errorf("trace %s iter %d diverges: cost=%g gradnorm=%g want cost=%g gradnorm=%g",
					trace, i, seq[i].Cost, seq[i].GradNorm, ref[i].Cost, ref[i].GradNorm)
			}
		}
	}
}

// TestTraceEventKinds drives one optimization with both the runtime sink
// (plan-cache and pool events from bank construction) and a per-run sink
// installed, and asserts every event family of the taxonomy shows up.
// The simulator uses a grid size no other test in this binary touches,
// so the process-wide FFT plan cache genuinely misses.
func TestTraceEventKinds(t *testing.T) {
	c := NewCollectorTraceSink()
	SetRuntimeTrace(c)
	defer SetRuntimeTrace(nil)

	cfg := litho.DefaultConfig(32, 48)
	cfg.Optics.Kernels = 2
	sim, err := litho.NewSimulator(cfg, CPUEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	sim.SetSink(c, "t1")

	target := NewField(32, 32)
	for y := 12; y < 20; y++ {
		for x := 6; x < 26; x++ {
			target.Set(x, y, 1)
		}
	}
	opts := core.DefaultOptions()
	opts.MaxIter = 2
	opts.Sink = c
	opts.TraceID = "t1"
	opt, err := core.New(sim, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer opt.Release()
	if _, err := opt.Run(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	sawPlanMiss := false
	for _, e := range c.Events() {
		kinds[e.Type]++
		if e.Type == EventPlanCache && !e.Hit {
			sawPlanMiss = true
		}
	}
	for _, kind := range []string{EventIteration, EventCorner, EventPlanCache, EventPool} {
		if kinds[kind] == 0 {
			t.Errorf("no %q events collected (got %v)", kind, kinds)
		}
	}
	if !sawPlanMiss {
		t.Errorf("expected at least one plan-cache miss for the fresh grid size (got %v)", kinds)
	}
	for _, e := range c.Events() {
		if e.Type == EventIteration && e.Trace != "t1" {
			t.Errorf("iteration event carries trace %q, want %q", e.Trace, "t1")
		}
	}
}

// TestDisabledSinkDoesNotAllocate pins the "observability off" contract
// at the obs layer: emitting through a nil sink guard plus the atomic
// metric updates must stay allocation-free (the optimizer's own warm
// zero-alloc gate lives in internal/core's alloc test).
func TestDisabledSinkDoesNotAllocate(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("trace_test.disabled")
	h := reg.Histogram("trace_test.disabled_ns", obs.DurationBounds)
	var sink obs.Sink
	n := testing.AllocsPerRun(200, func() {
		ctr.Inc()
		h.Observe(123456)
		if sink != nil {
			sink.Emit(obs.Event{Type: EventIteration})
		}
	})
	if n != 0 {
		t.Fatalf("disabled-path metric+trace op allocates %.1f/op, want 0", n)
	}
}

// TestPipelineReleaseFlushesSinkOnce verifies Release drains the attached
// sink and that a double Release is a safe no-op.
func TestPipelineReleaseFlushesSinkOnce(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLTraceSink(&buf)
	p, err := NewPipeline(PresetTest, CPUEngine(), WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	layout := Benchmark("B1")
	mask, err := p.Target(layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(layout, mask, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	p.Release()
	if buf.Len() == 0 {
		t.Fatal("Release did not flush the attached sink")
	}
	p.Release() // must not panic or double-free
}

// TestPipelineHealthPolicyInheritance verifies WithHealthPolicy reaches
// runs started through the pipeline: a policy that flags every
// post-first iteration as stalled must abort the run early and emit a
// typed health event tagged with the session's trace id.
func TestPipelineHealthPolicyInheritance(t *testing.T) {
	sink := NewCollectorTraceSink()
	hp := DefaultHealthPolicy()
	hp.StallWindow = 1
	hp.StallEpsilon = 1e9 // any finite improvement counts as a stall
	hp.DivergenceWindow = 0
	p, err := NewPipeline(PresetTest, CPUEngine(), WithTraceSink(sink), WithHealthPolicy(hp))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	opts := DefaultLevelSetOptions()
	opts.MaxIter = 10
	opts.Tolerance = 0
	res, err := p.OptimizeLevelSet(Benchmark("B1"), opts)
	if err != nil {
		t.Fatal(err)
	}
	ls := res.LevelSet
	if !ls.Aborted || ls.AbortReason != obs.HealthStall {
		t.Fatalf("aborted=%v reason=%q, want stall abort", ls.Aborted, ls.AbortReason)
	}
	if ls.Iterations >= opts.MaxIter {
		t.Fatalf("run used the full budget (%d iterations) despite the abort policy", ls.Iterations)
	}
	found := false
	for _, e := range sink.Events() {
		if e.Type == EventHealth {
			found = true
			if e.Trace == "" || e.Msg != obs.HealthStall {
				t.Fatalf("health event = %+v, want stall under a session trace id", e)
			}
		}
	}
	if !found {
		t.Fatal("no health event reached the pipeline sink")
	}
}
